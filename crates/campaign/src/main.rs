//! `campaign` — run a scenario-grid sweep from the command line.
//!
//! ```text
//! campaign [OPTIONS]                 run a sweep (full grid or one shard)
//! campaign merge [--out F] SHARD...  recombine shard files (or a directory
//!                                    of them) into the report
//! campaign orchestrate --workers N --run-dir DIR [OPTIONS]
//!                                    supervise N worker subprocesses over a
//!                                    shared run directory, with retries,
//!                                    crash recovery and live merging
//! campaign orchestrate --resume DIR  pick a killed/failed run back up
//!
//!   --topologies LIST   comma-separated topology specs (default:
//!                       cycle:9,rand-grid:3,ws:9:4:0.2); see
//!                       --list-topologies
//!   --modes LIST        swap policies by registry name (default:
//!                       oblivious,planned,hybrid); see --list-policies
//!   --dist LIST         distillation overheads (default: 1,2)
//!   --physics LIST      link-physics axis specs: ideal and/or
//!                       decoherent:T2[:FLOOR] (default: ideal); see
//!                       --list-physics
//!   --fabric LIST       link-fabric axis items: none, PRESET or
//!                       TOPO@PRESET (the TOPO joins the topology axis),
//!                       e.g. scale-free:1000@metro-fiber; see
//!                       --list-fabrics
//!   --gossip K          add a gossip knowledge axis with K peers/refresh
//!   --knowledge LIST    explicit knowledge axis: global, gossip:K and/or
//!                       gossip:K:PERIOD items (PERIOD in simulated
//!                       seconds; omitted couples exchanges to the
//!                       swap-scan cadence)
//!   --pairs N           consumer pairs per workload (default: 10)
//!   --requests N        requests per run (default: 12)
//!   --workload LIST     comma-separated workload axis specs (see
//!                       --list-workloads); default: one closed-loop cell
//!                       built from --pairs/--requests
//!   --replicates N      replicates per cell (default: 6)
//!   --seed N            master seed (default: 1)
//!   --horizon S         simulated-seconds horizon (default: 4000)
//!   --threads N         worker threads (default: all cores)
//!   --cache-dir DIR     consult/extend a content-addressed outcome cache;
//!                       already-cached scenarios are not simulated
//!   --shard I/N         run only shard I of a deterministic N-way
//!                       partition and emit a shard file instead of the
//!                       report (recombine with `campaign merge`)
//!   --out FILE          write the JSONL report (or shard file) to FILE
//!                       (default: stdout)
//!   --compare-serial    also run single-threaded; verify byte-identical
//!                       reports and print the parallel speedup
//!   --dry-run           print the grid shape and exit
//!   --list-policies     print the registered swap policies and exit without running
//!   --list-workloads    print the workload-spec grammar and exit
//!   --list-topologies   print the topology-spec grammar and exit
//!   --list-physics      print the physics-spec grammar and exit
//!   --list-fabrics      print the fabric-spec grammar and exit
//! ```
//!
//! The JSON-lines report goes to stdout (or `--out`); the human summary and
//! timing go to stderr, so `campaign > sweep.jsonl` composes cleanly.
//!
//! Determinism contract: a cold single-process run, a warm fully-cached
//! run, and any `--shard I/N` partition recombined with `campaign merge`
//! all produce byte-identical JSONL reports (the CI smoke job `cmp`s them).

use qnet_campaign::orchestrator::events::ProgressWriter;
use qnet_campaign::{
    aggregate, merge_shards, orchestrate, policy_listing, read_shard, resume_orchestrated,
    run_campaign, run_scenarios_streaming, shard_to_string, to_jsonl_string, InjectAbort,
    OrchestratorConfig, OutcomeCache, OutcomeSource, RunDir, RunnerConfig, ScenarioGrid, ShardSpec,
};
use qnet_core::classical::KnowledgeModel;
use qnet_core::physics::PhysicsModel;
use qnet_core::policy::PolicyId;
use qnet_core::workload::{PairSelection, TrafficModel, WorkloadSpec};
use qnet_topology::{FabricSpec, Topology};
use std::io::Write;
use std::path::Path;
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    topologies: Vec<Topology>,
    modes: Vec<PolicyId>,
    distillations: Vec<f64>,
    knowledge: Vec<KnowledgeModel>,
    physics: Vec<PhysicsModel>,
    /// Link-fabric axis items, in first-mention order; empty means the
    /// homogeneous default (`vec![None]` at grid build time).
    fabrics: Vec<Option<FabricSpec>>,
    /// Topologies named via `TOPO@PRESET` fabric items; appended to the
    /// topology axis after the `--topologies` values.
    fabric_topologies: Vec<Topology>,
    pairs: usize,
    requests: usize,
    /// Raw --workload specs; resolved against --requests and --horizon in
    /// `build_grid` (open-loop arrival horizons default to the run horizon).
    workloads: Vec<String>,
    replicates: u32,
    seed: u64,
    horizon: f64,
    threads: usize,
    cache_dir: Option<String>,
    shard: Option<ShardSpec>,
    out: Option<String>,
    compare_serial: bool,
    dry_run: bool,
    /// Load the grid from a JSON descriptor instead of the grid-shaping
    /// flags (how orchestrated workers receive their grid).
    grid_file: Option<String>,
    /// Stream seq-numbered JSONL progress events (shard claimed, scenario
    /// simulated/cache-hit, shard sealed) to this file.
    progress: Option<String>,
    /// Testing hook: exit with code 17 after N simulated scenarios.
    worker_abort_after: Option<usize>,
    /// True once any grid-shaping flag was given (conflicts with
    /// --grid-file).
    grid_flags_used: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            topologies: vec![
                Topology::Cycle { nodes: 9 },
                Topology::RandomConnectedGrid { side: 3 },
                Topology::WattsStrogatz {
                    nodes: 9,
                    neighbors: 4,
                    rewire_probability: 0.2,
                },
            ],
            modes: vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED, PolicyId::HYBRID],
            distillations: vec![1.0, 2.0],
            knowledge: vec![KnowledgeModel::Global],
            physics: vec![PhysicsModel::Ideal],
            fabrics: Vec::new(),
            fabric_topologies: Vec::new(),
            pairs: 10,
            requests: 12,
            workloads: Vec::new(),
            replicates: 6,
            seed: 1,
            horizon: 4_000.0,
            threads: 0,
            cache_dir: None,
            shard: None,
            out: None,
            compare_serial: false,
            dry_run: false,
            grid_file: None,
            progress: None,
            worker_abort_after: None,
            grid_flags_used: false,
        }
    }
}

fn parse_topology(spec: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let n = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("{spec}: missing parameter {i}"))?
            .parse()
            .map_err(|_| format!("{spec}: bad integer parameter"))
    };
    let f = |i: usize| -> Result<f64, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("{spec}: missing parameter {i}"))?
            .parse()
            .map_err(|_| format!("{spec}: bad float parameter"))
    };
    match parts[0] {
        "cycle" => Ok(Topology::Cycle { nodes: n(1)? }),
        "path" => Ok(Topology::Path { nodes: n(1)? }),
        "star" => Ok(Topology::Star { nodes: n(1)? }),
        "complete" => Ok(Topology::Complete { nodes: n(1)? }),
        "torus" => Ok(Topology::TorusGrid { side: n(1)? }),
        "grid" => Ok(Topology::PlanarGrid { side: n(1)? }),
        "rand-grid" => Ok(Topology::RandomConnectedGrid { side: n(1)? }),
        "er" => Ok(Topology::ErdosRenyiConnected {
            nodes: n(1)?,
            edge_probability: f(2)?,
        }),
        "ws" => Ok(Topology::WattsStrogatz {
            nodes: n(1)?,
            neighbors: n(2)?,
            rewire_probability: f(3)?,
        }),
        "tree" => Ok(Topology::RandomTree { nodes: n(1)? }),
        "scale-free" => Ok(Topology::ScaleFree {
            nodes: n(1)?,
            // Preferential attachment defaults to 2 edges per newcomer (the
            // classic internet-like Barabási–Albert setting).
            attach: if parts.len() > 2 { n(2)? } else { 2 },
        }),
        "nyc-fiber" => {
            if parts.len() > 1 {
                return Err(format!("{spec}: nyc-fiber takes no parameters"));
            }
            Ok(Topology::DeployedFiber)
        }
        other => Err(format!(
            "unknown topology family '{other}' (valid: cycle, path, star, complete, \
             torus, grid, rand-grid, er, ws, tree, scale-free, nyc-fiber; \
             see --list-topologies)"
        )),
    }
}

/// Parse one `--fabric` item: `none`, `PRESET`, or `TOPO@PRESET` (the
/// topology joins the grid's topology axis). Returns the fabric-axis entry
/// plus the optional topology rider.
fn parse_fabric_item(item: &str) -> Result<(Option<FabricSpec>, Option<Topology>), String> {
    if item == "none" {
        return Ok((None, None));
    }
    match item.split_once('@') {
        Some((topo, preset)) => Ok((
            Some(FabricSpec::parse(preset)?),
            Some(parse_topology(topo)?),
        )),
        None => Ok((Some(FabricSpec::parse(item)?), None)),
    }
}

/// Parse one workload spec:
/// `closed[:REQUESTS]` or `open-loop:RATE_HZ[:HORIZON_S]`, optionally
/// suffixed with a selection: `@uniform`, `@round-robin` or `@zipf:S`.
fn parse_workload(
    spec: &str,
    default_requests: usize,
    default_horizon_s: f64,
) -> Result<WorkloadSpec, String> {
    let (traffic_spec, selection_spec) = match spec.split_once('@') {
        Some((t, sel)) => (t, Some(sel)),
        None => (spec, None),
    };
    let parts: Vec<&str> = traffic_spec.split(':').collect();
    let traffic = match parts[0] {
        "closed" => {
            let requests = match parts.get(1) {
                Some(r) => r
                    .parse()
                    .map_err(|_| format!("{spec}: bad request count"))?,
                None => default_requests,
            };
            if parts.len() > 2 {
                return Err(format!("{spec}: closed takes at most one parameter"));
            }
            if requests < 1 {
                return Err(format!("{spec}: closed needs at least one request"));
            }
            TrafficModel::ClosedLoopBatch { requests }
        }
        "open-loop" => {
            let rate_hz: f64 = parts
                .get(1)
                .ok_or_else(|| format!("{spec}: open-loop needs a rate"))?
                .parse()
                .map_err(|_| format!("{spec}: bad arrival rate"))?;
            let horizon_s: f64 = match parts.get(2) {
                Some(h) => h.parse().map_err(|_| format!("{spec}: bad horizon"))?,
                None => default_horizon_s,
            };
            if parts.len() > 3 {
                return Err(format!("{spec}: open-loop takes at most two parameters"));
            }
            if rate_hz <= 0.0 || !rate_hz.is_finite() {
                return Err(format!("{spec}: arrival rate must be positive"));
            }
            if horizon_s <= 0.0 || !horizon_s.is_finite() {
                return Err(format!("{spec}: arrival horizon must be positive"));
            }
            TrafficModel::OpenLoopPoisson { rate_hz, horizon_s }
        }
        other => Err(format!(
            "unknown traffic model '{other}' (valid: closed, open-loop; \
             see --list-workloads)"
        ))?,
    };
    let selection = match selection_spec {
        None | Some("uniform") => PairSelection::UniformRandom,
        Some("round-robin") => PairSelection::RoundRobin,
        Some(sel) => match sel.split_once(':') {
            Some(("zipf", s)) => {
                let s: f64 = s
                    .parse()
                    .map_err(|_| format!("{spec}: bad Zipf exponent"))?;
                if s < 0.0 || !s.is_finite() {
                    return Err(format!("{spec}: Zipf exponent must be ≥ 0"));
                }
                PairSelection::ZipfSkew { s }
            }
            _ => {
                return Err(format!(
                    "unknown selection '@{sel}' (valid: @uniform, @round-robin, \
                     @zipf:S; see --list-workloads)"
                ))
            }
        },
    };
    Ok(WorkloadSpec {
        node_count: 0,     // patched per topology at expansion time
        consumer_pairs: 0, // patched from --pairs in build_grid
        traffic,
        selection,
    })
}

fn parse_mode(spec: &str) -> Result<PolicyId, String> {
    // Any name, alias or legacy label in the policy registry is accepted —
    // `campaign --list-policies` prints them.
    PolicyId::parse(spec)
}

fn parse_list<T, E: std::fmt::Display>(
    name: &str,
    value: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Vec<T> = value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s.trim()).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(format!("{name} needs at least one value"));
    }
    Ok(items)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        // Grid-shaping flags conflict with --grid-file (a descriptor file
        // is authoritative; silently overriding part of it would be worse).
        if matches!(
            arg.as_str(),
            "--topologies"
                | "--modes"
                | "--dist"
                | "--gossip"
                | "--knowledge"
                | "--physics"
                | "--fabric"
                | "--pairs"
                | "--requests"
                | "--workload"
                | "--replicates"
                | "--seed"
                | "--horizon"
        ) {
            opts.grid_flags_used = true;
        }
        match arg.as_str() {
            "--topologies" => {
                opts.topologies =
                    parse_list("--topologies", value("--topologies")?, parse_topology)?
            }
            "--modes" => opts.modes = parse_list("--modes", value("--modes")?, parse_mode)?,
            "--dist" => {
                opts.distillations = parse_list("--dist", value("--dist")?, |s| {
                    s.parse::<f64>().map_err(|e| e.to_string())
                })?
            }
            "--gossip" => {
                let k: usize = value("--gossip")?
                    .parse()
                    .map_err(|_| "--gossip needs an integer".to_string())?;
                if k < 1 {
                    return Err("--gossip must refresh at least one peer per scan".to_string());
                }
                opts.knowledge = vec![
                    KnowledgeModel::Global,
                    KnowledgeModel::Gossip {
                        peers_per_refresh: k,
                        refresh_period_s: 0.0,
                    },
                ];
            }
            "--knowledge" => {
                opts.knowledge =
                    parse_list("--knowledge", value("--knowledge")?, KnowledgeModel::parse)?
            }
            "--physics" => {
                opts.physics = parse_list("--physics", value("--physics")?, PhysicsModel::parse)?
            }
            "--fabric" => {
                let items = parse_list("--fabric", value("--fabric")?, parse_fabric_item)?;
                for (fabric, topology) in items {
                    if !opts.fabrics.contains(&fabric) {
                        opts.fabrics.push(fabric);
                    }
                    if let Some(t) = topology {
                        if !opts.fabric_topologies.contains(&t) {
                            opts.fabric_topologies.push(t);
                        }
                    }
                }
            }
            "--pairs" => {
                opts.pairs = value("--pairs")?
                    .parse()
                    .map_err(|_| "--pairs needs an integer".to_string())?
            }
            "--requests" => {
                opts.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests needs an integer".to_string())?
            }
            "--workload" => {
                opts.workloads = value("--workload")?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().to_string())
                    .collect();
                if opts.workloads.is_empty() {
                    return Err("--workload needs at least one spec".to_string());
                }
            }
            "--replicates" => {
                opts.replicates = value("--replicates")?
                    .parse()
                    .map_err(|_| "--replicates needs an integer".to_string())?
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--horizon" => {
                opts.horizon = value("--horizon")?
                    .parse()
                    .map_err(|_| "--horizon needs a number".to_string())?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?
            }
            "--cache-dir" => opts.cache_dir = Some(value("--cache-dir")?.clone()),
            "--shard" => opts.shard = Some(ShardSpec::parse(value("--shard")?)?),
            "--out" => opts.out = Some(value("--out")?.clone()),
            "--grid-file" => opts.grid_file = Some(value("--grid-file")?.clone()),
            "--progress" => opts.progress = Some(value("--progress")?.clone()),
            "--worker-abort-after" => {
                opts.worker_abort_after = Some(
                    value("--worker-abort-after")?
                        .parse()
                        .map_err(|_| "--worker-abort-after needs an integer".to_string())?,
                )
            }
            "--list-policies" => return Err("list-policies".to_string()),
            "--list-workloads" => return Err("list-workloads".to_string()),
            "--list-topologies" => return Err("list-topologies".to_string()),
            "--list-physics" => return Err("list-physics".to_string()),
            "--list-fabrics" => return Err("list-fabrics".to_string()),
            "--compare-serial" => opts.compare_serial = true,
            "--dry-run" => opts.dry_run = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    // Validate here so bad input exits with a message, not a panic from the
    // grid builder's asserts.
    if opts.replicates < 1 {
        return Err("--replicates must be at least 1".to_string());
    }
    if let Some(d) = opts.distillations.iter().find(|&&d| d < 1.0) {
        return Err(format!("--dist values must be ≥ 1 (got {d})"));
    }
    if opts.horizon <= 0.0 {
        return Err("--horizon must be positive".to_string());
    }
    if opts.pairs < 1 || opts.requests < 1 {
        return Err("--pairs and --requests must be at least 1".to_string());
    }
    // Validate workload specs early so bad input exits with a message.
    for w in &opts.workloads {
        parse_workload(w, opts.requests, opts.horizon)?;
    }
    if let Some(t) = opts
        .topologies
        .iter()
        .chain(&opts.fabric_topologies)
        .find(|t| t.node_count() < 2)
    {
        return Err(format!(
            "topology {} has fewer than 2 nodes; consumer pairs need at least 2",
            t.label()
        ));
    }
    if opts.shard.is_some() && opts.compare_serial {
        return Err(
            "--compare-serial compares full-grid reports; it cannot run on a --shard \
             (merge the shards and compare reports instead)"
                .to_string(),
        );
    }
    if opts.grid_file.is_some() && opts.grid_flags_used {
        return Err(
            "--grid-file provides the whole grid; it cannot be combined with \
             grid-shaping flags (--topologies, --modes, --seed, …)"
                .to_string(),
        );
    }
    Ok(opts)
}

/// Load a grid descriptor written by `campaign orchestrate` (or any
/// serialized [`ScenarioGrid`]) — how orchestrated workers receive their
/// grid without re-serializing it through CLI flags.
fn load_grid_file(path: &str) -> Result<ScenarioGrid, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read grid file {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("grid file {path}: {e}"))
}

fn build_grid(opts: &Options) -> ScenarioGrid {
    let workloads: Vec<WorkloadSpec> = if opts.workloads.is_empty() {
        // The pre-traffic-model default: one closed-loop uniform cell.
        vec![WorkloadSpec::closed_loop(0, opts.pairs, opts.requests)]
    } else {
        opts.workloads
            .iter()
            .map(|w| {
                parse_workload(w, opts.requests, opts.horizon)
                    .expect("validated in parse_args")
                    .with_consumer_pairs(opts.pairs)
            })
            .collect()
    };
    // Topologies named by `TOPO@PRESET` fabric items join the axis after
    // the explicit `--topologies` values (first mention wins on duplicates).
    let mut topologies = opts.topologies.clone();
    for t in &opts.fabric_topologies {
        if !topologies.contains(t) {
            topologies.push(*t);
        }
    }
    let fabrics = if opts.fabrics.is_empty() {
        vec![None]
    } else {
        opts.fabrics.clone()
    };
    ScenarioGrid::new(opts.seed)
        .with_topologies(topologies)
        .with_modes(opts.modes.clone())
        .with_distillations(opts.distillations.clone())
        .with_knowledge(opts.knowledge.clone())
        .with_physics(opts.physics.clone())
        .with_fabrics(fabrics)
        .with_workloads(workloads)
        .with_replicates(opts.replicates)
        .with_horizon_s(opts.horizon)
}

/// Shard files inside `dir` (`shard-*.jsonl`, sealed only), sorted by name
/// for deterministic merge input order. Falls back to a `shards/`
/// subdirectory, so an orchestrator run directory merges directly.
fn shard_files_in_dir(dir: &Path) -> Result<Vec<String>, String> {
    let listing = |d: &Path| -> Result<Vec<String>, String> {
        let mut found = Vec::new();
        let entries = std::fs::read_dir(d)
            .map_err(|e| format!("cannot read directory {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read directory {}: {e}", d.display()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("shard-") && name.ends_with(".jsonl") {
                found.push(entry.path().to_string_lossy().into_owned());
            }
        }
        found.sort();
        Ok(found)
    };
    let direct = listing(dir)?;
    if !direct.is_empty() {
        return Ok(direct);
    }
    let shards_subdir = dir.join("shards");
    if shards_subdir.is_dir() {
        let nested = listing(&shards_subdir)?;
        if !nested.is_empty() {
            return Ok(nested);
        }
    }
    Err(format!(
        "{}: no shard-*.jsonl files found (in-flight .partial files are \
         ignored; did the shard runs finish?)",
        dir.display()
    ))
}

/// `campaign merge [--out FILE] SHARD_FILE...`: recombine shard files into
/// the exact single-process aggregate report.
fn run_merge(args: &[String]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("campaign merge: --out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprint!("{}", MERGE_USAGE);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("campaign merge: unknown argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
            path => files.push(path),
        }
    }
    if files.is_empty() {
        eprintln!("campaign merge: no shard files given (try --help)");
        return ExitCode::FAILURE;
    }

    // A directory argument stands for every sealed shard file inside it.
    let mut expanded: Vec<String> = Vec::new();
    for path in &files {
        if Path::new(path).is_dir() {
            match shard_files_in_dir(Path::new(path)) {
                Ok(found) => expanded.extend(found),
                Err(e) => {
                    eprintln!("campaign merge: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            expanded.push(path.to_string());
        }
    }
    let files = expanded;

    let mut shards = Vec::with_capacity(files.len());
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("campaign merge: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_shard(&text) {
            Ok(shard) => shards.push(shard),
            Err(e) => {
                eprintln!("campaign merge: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (grid, result) = match merge_shards(shards) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("campaign merge: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "campaign merge: {} shards × grid {} → {} scenarios, {} cells",
        files.len(),
        grid.fingerprint(),
        result.outcomes.len(),
        grid.cell_count(),
    );
    let jsonl = to_jsonl_string(&aggregate(&grid, &result));
    write_output_exit(&jsonl, out.as_deref(), "campaign merge")
}

/// Write report/shard text to `--out` or stdout, with diagnostics on
/// stderr. Returns `true` on success.
fn write_output(text: &str, out: Option<&str>, who: &str) -> bool {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("{who}: cannot write {path}: {e}");
                return false;
            }
            eprintln!("{who}: wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(text.as_bytes()).is_err() {
                return false;
            }
        }
    }
    true
}

/// Exit-code wrapper around [`write_output`].
fn write_output_exit(text: &str, out: Option<&str>, who: &str) -> ExitCode {
    if write_output(text, out, who) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `campaign orchestrate`: spawn and supervise worker subprocesses over a
/// shared run directory. Grid-shaping flags pass through to the same parser
/// as a plain run; a `--resume` takes no grid flags (the run directory is
/// authoritative).
fn run_orchestrate(args: &[String]) -> ExitCode {
    let mut workers: Option<usize> = None;
    let mut run_dir: Option<String> = None;
    let mut resume_dir: Option<String> = None;
    let mut out: Option<String> = None;
    let mut config_overrides: Vec<(&str, String)> = Vec::new();
    let mut grid_args: Vec<String> = Vec::new();
    let take = |it: &mut std::slice::Iter<String>, name: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{name} needs a value"))
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let parsed: Result<(), String> = match arg.as_str() {
            "--workers" => take(&mut it, "--workers").and_then(|v| {
                workers = Some(
                    v.parse()
                        .map_err(|_| "--workers needs an integer".to_string())?,
                );
                Ok(())
            }),
            "--run-dir" => take(&mut it, "--run-dir").map(|v| run_dir = Some(v)),
            "--resume" => take(&mut it, "--resume").map(|v| resume_dir = Some(v)),
            "--out" => take(&mut it, "--out").map(|v| out = Some(v)),
            "--worker-threads" => {
                take(&mut it, "--worker-threads").map(|v| config_overrides.push(("threads", v)))
            }
            "--heartbeat-timeout" => take(&mut it, "--heartbeat-timeout")
                .map(|v| config_overrides.push(("heartbeat", v))),
            "--max-attempts" => {
                take(&mut it, "--max-attempts").map(|v| config_overrides.push(("attempts", v)))
            }
            "--inject-abort" => {
                take(&mut it, "--inject-abort").map(|v| config_overrides.push(("inject", v)))
            }
            "--quiet" => {
                config_overrides.push(("quiet", String::new()));
                Ok(())
            }
            "--help" | "-h" => Err("help".to_string()),
            other => {
                // Anything else is a grid-shaping flag for parse_args.
                grid_args.push(other.to_string());
                if let Some(v) = it.next() {
                    grid_args.push(v.clone());
                }
                Ok(())
            }
        };
        if let Err(msg) = parsed {
            if msg == "help" {
                eprint!("{}", ORCHESTRATE_USAGE);
                return ExitCode::SUCCESS;
            }
            eprintln!("campaign orchestrate: {msg}");
            return ExitCode::FAILURE;
        }
    }

    if resume_dir.is_some() && (run_dir.is_some() || workers.is_some() || !grid_args.is_empty()) {
        eprintln!(
            "campaign orchestrate: --resume takes the run directory as the only \
             source of truth; it cannot be combined with --run-dir, --workers or \
             grid-shaping flags"
        );
        return ExitCode::FAILURE;
    }

    let dir = match (&resume_dir, &run_dir) {
        (Some(d), _) => d.clone(),
        (None, Some(d)) => d.clone(),
        (None, None) => {
            eprintln!("campaign orchestrate: --run-dir is required (or --resume DIR; try --help)");
            return ExitCode::FAILURE;
        }
    };
    // Worker count is resolved from the manifest on resume.
    let mut config = OrchestratorConfig::new(workers.unwrap_or(1), &dir);
    for (key, raw) in &config_overrides {
        let applied: Result<(), String> = (|| {
            match *key {
                "threads" => {
                    config.worker_threads = raw
                        .parse()
                        .map_err(|_| "--worker-threads needs an integer".to_string())?
                }
                "heartbeat" => {
                    let secs: f64 = raw
                        .parse()
                        .map_err(|_| "--heartbeat-timeout needs seconds".to_string())?;
                    if secs <= 0.0 || !secs.is_finite() {
                        return Err("--heartbeat-timeout must be positive".to_string());
                    }
                    config.heartbeat_timeout = std::time::Duration::from_secs_f64(secs);
                }
                "attempts" => {
                    config.max_attempts = raw
                        .parse()
                        .map_err(|_| "--max-attempts needs an integer".to_string())?
                }
                "inject" => config.inject_abort = Some(InjectAbort::parse(raw)?),
                "quiet" => config.quiet = true,
                _ => unreachable!(),
            }
            Ok(())
        })();
        if let Err(msg) = applied {
            eprintln!("campaign orchestrate: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let outcome = if resume_dir.is_some() {
        resume_orchestrated(&config)
    } else {
        if workers.is_none() {
            eprintln!("campaign orchestrate: --workers N is required for a fresh run (try --help)");
            return ExitCode::FAILURE;
        }
        let opts = match parse_args(&grid_args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("campaign orchestrate: {msg}");
                return ExitCode::FAILURE;
            }
        };
        let grid = match &opts.grid_file {
            Some(path) => match load_grid_file(path) {
                Ok(grid) => grid,
                Err(e) => {
                    eprintln!("campaign orchestrate: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => build_grid(&opts),
        };
        orchestrate(&grid, &config)
    };
    match outcome {
        Ok(report) => {
            eprintln!(
                "campaign orchestrate: {} scenarios across {} shard(s) \
                 (simulated={} cache_hits={} retries={}) → {}",
                report.scenarios,
                report.sealed_shards,
                report.simulated,
                report.cache_hits,
                report.retries,
                RunDir::new(&dir).merged_path().display(),
            );
            match out {
                // merged.jsonl is already on disk; --out additionally
                // copies the report where asked (stdout with no --out
                // would double-print for pipelines, so it is opt-in here).
                Some(path) => {
                    write_output_exit(&report.merged_jsonl, Some(&path), "campaign orchestrate")
                }
                None => ExitCode::SUCCESS,
            }
        }
        Err(msg) => {
            eprintln!("campaign orchestrate: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return run_merge(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("orchestrate") {
        return run_orchestrate(&args[1..]);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg == "help" {
                eprint!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            if msg == "list-policies" {
                print!("{}", policy_listing());
                return ExitCode::SUCCESS;
            }
            if msg == "list-workloads" {
                print!("{}", WORKLOADS_HELP);
                return ExitCode::SUCCESS;
            }
            if msg == "list-topologies" {
                print!("{}", TOPOLOGIES_HELP);
                return ExitCode::SUCCESS;
            }
            if msg == "list-physics" {
                print!("{}", PHYSICS_HELP);
                return ExitCode::SUCCESS;
            }
            if msg == "list-fabrics" {
                print!("{}", FABRICS_HELP);
                return ExitCode::SUCCESS;
            }
            eprintln!("campaign: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let grid = match &opts.grid_file {
        Some(path) => match load_grid_file(path) {
            Ok(grid) => grid,
            Err(e) => {
                eprintln!("campaign: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => build_grid(&opts),
    };
    eprintln!(
        "campaign: {} cells × {} replicates = {} scenarios ({} topologies × {} modes × {} D × {} knowledge × {} physics × {} fabrics × {} workloads)",
        grid.cell_count(),
        grid.replicates,
        grid.scenario_count(),
        grid.topologies.len(),
        grid.modes.len(),
        grid.distillations.len(),
        grid.knowledge.len(),
        grid.physics.len(),
        grid.fabrics.len(),
        grid.workloads.len(),
    );
    if opts.dry_run {
        for key in grid.cell_keys() {
            let traffic = match key.traffic {
                Some(TrafficModel::OpenLoopPoisson { rate_hz, horizon_s }) => {
                    format!(" open-loop:{rate_hz}Hz×{horizon_s}s")
                }
                _ => String::new(),
            };
            let physics = match key.physics {
                Some(p) => format!(" physics={}", p.label()),
                None => String::new(),
            };
            let fabric = match key.fabric {
                Some(f) => format!(" fabric={}", f.label()),
                None => String::new(),
            };
            eprintln!(
                "  cell {:>4}: {:<16} N={:<3} mode={:?} D={} pairs={} requests={}{traffic}{physics}{fabric}",
                key.cell,
                key.topology,
                key.nodes,
                key.mode,
                key.distillation,
                key.consumer_pairs,
                key.requests,
            );
        }
        return ExitCode::SUCCESS;
    }

    let runner = RunnerConfig {
        threads: opts.threads,
        chunk_size: 0,
    };
    let total = grid.scenario_count();
    let ids: Vec<usize> = match opts.shard {
        Some(spec) => spec.ids(total),
        None => (0..total).collect(),
    };
    let mut cache = match &opts.cache_dir {
        Some(dir) => match OutcomeCache::open(Path::new(dir), &grid) {
            Ok(cache) => {
                if cache.rejected_lines() > 0 {
                    eprintln!(
                        "campaign: cache {} held {} damaged/foreign line(s); \
                         the affected scenarios will be recomputed",
                        cache.path().display(),
                        cache.rejected_lines(),
                    );
                }
                Some(cache)
            }
            Err(e) => {
                eprintln!("campaign: cannot open cache dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Optional progress stream: one flushed, seq-numbered JSONL record per
    // scenario, so the file's growth doubles as this process's heartbeat
    // for an orchestrator watching it.
    let progress_spec = opts.shard.unwrap_or(ShardSpec { index: 0, count: 1 });
    let mut progress_writer = match &opts.progress {
        Some(path) => {
            let mut writer = match ProgressWriter::create(Path::new(path)) {
                Ok(writer) => writer,
                Err(e) => {
                    eprintln!("campaign: cannot create progress file {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = writer.shard_claimed(progress_spec, ids.len()) {
                eprintln!("campaign: cannot write progress file {path}: {e}");
                return ExitCode::FAILURE;
            }
            Some(writer)
        }
        None => None,
    };
    let abort_after = opts.worker_abort_after;
    let mut simulated_seen = 0usize;
    let mut progress_error: Option<std::io::Error> = None;
    let result = match run_scenarios_streaming(&grid, &runner, &ids, cache.as_mut(), |event| {
        if progress_error.is_none() {
            if let Some(writer) = progress_writer.as_mut() {
                if let Err(e) = writer.scenario(event.id, event.source) {
                    progress_error = Some(e);
                }
            }
        }
        if event.source == OutcomeSource::Simulated {
            simulated_seen += 1;
            if abort_after.is_some_and(|n| simulated_seen >= n) {
                // Testing hook: die abruptly mid-run, after the cache
                // append, exactly like a crashed worker would.
                eprintln!(
                    "campaign: aborting after {simulated_seen} simulated scenario(s) \
                     (--worker-abort-after)"
                );
                std::process::exit(17);
            }
        }
    }) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("campaign: cache append failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(e) = progress_error {
        eprintln!("campaign: cannot write progress file: {e}");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "campaign: {} scenarios on {} threads in {:.2}s ({:.1} scenarios/s) \
         simulated={} cache_hits={}",
        result.outcomes.len(),
        result.threads_used,
        result.wall_seconds,
        result.outcomes.len() as f64 / result.wall_seconds.max(1e-9),
        result.simulated,
        result.cache_hits,
    );

    if let Some(spec) = opts.shard {
        // A shard run emits a self-describing shard file, not a report: the
        // aggregate is only exact once every shard is merged.
        eprintln!(
            "campaign: shard {spec} holds {} of {total} scenarios (grid {})",
            ids.len(),
            grid.fingerprint(),
        );
        let shard_text = shard_to_string(&grid, spec, &result.outcomes);
        if !write_output(&shard_text, opts.out.as_deref(), "campaign") {
            return ExitCode::FAILURE;
        }
        // The sealed event goes out only after the shard file is durably
        // written — the orchestrator treats it as informational either way
        // (its authoritative seal is validate+rename).
        if let Some(writer) = progress_writer.as_mut() {
            if let Err(e) = writer.shard_sealed(ids.len()) {
                eprintln!("campaign: cannot write progress file: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let report = aggregate(&grid, &result);
    let jsonl = to_jsonl_string(&report);

    if opts.compare_serial {
        let serial = run_campaign(&grid, &RunnerConfig::serial());
        let serial_report = aggregate(&grid, &serial);
        let serial_jsonl = to_jsonl_string(&serial_report);
        assert_eq!(
            jsonl, serial_jsonl,
            "parallel and serial reports must be byte-identical"
        );
        eprintln!(
            "campaign: serial run {:.2}s → speedup {:.2}× on {} threads (reports byte-identical ✓)",
            serial.wall_seconds,
            serial.wall_seconds / result.wall_seconds.max(1e-9),
            result.threads_used,
        );
    }

    // Human summary of the headline metric.
    for cell in &report.cell_reports {
        let knowledge = match cell.key.knowledge {
            KnowledgeModel::Global => String::new(),
            gossip => format!(" {}", gossip.label()),
        };
        let latency = match (cell.latency_p50_s, cell.latency_p95_s) {
            (Some(p50), Some(p95)) => format!("  lat p50 {p50:.1}s p95 {p95:.1}s"),
            _ => String::new(),
        };
        let fidelity = match cell.fidelity_mean {
            Some(mean) => format!(
                "  fid {mean:.3} (expired {}, rejected {})",
                cell.expired_pairs_total, cell.fidelity_rejected_total
            ),
            None => String::new(),
        };
        eprintln!(
            "  {:<16} N={:<3} {:>26}{knowledge} D={:<4} overhead {:>8} ±{:>6} sat {:>5.1}%{latency}{fidelity}",
            cell.key.topology,
            cell.key.nodes,
            format!("{:?}", cell.key.mode),
            cell.key.distillation,
            cell.overhead_mean
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.overhead_ci95
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.satisfaction_mean * 100.0,
        );
    }
    for ratio in &report.ratios {
        eprintln!(
            "  ratio {:<16} D={:<4} {:?}/{:?} = {:.3}",
            ratio.topology,
            ratio.distillation,
            ratio.numerator_mode,
            ratio.denominator_mode,
            ratio.ratio,
        );
    }

    if !write_output(&jsonl, opts.out.as_deref(), "campaign") {
        return ExitCode::FAILURE;
    }
    if let Some(writer) = progress_writer.as_mut() {
        if let Err(e) = writer.shard_sealed(ids.len()) {
            eprintln!("campaign: cannot write progress file: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

const USAGE: &str = "\
campaign — run a qnet scenario-grid sweep

USAGE:
  campaign [OPTIONS]                      run the sweep, JSONL on stdout
  campaign --shard I/N [OPTIONS]          run one shard, shard file on stdout
  campaign merge [--out F] SHARD...       recombine shard files (or a
                                          directory of them) into the report
  campaign orchestrate --workers N --run-dir DIR [OPTIONS]
                                          multi-process supervised run
                                          (see campaign orchestrate --help)
  campaign --dry-run [OPTIONS]            print the grid shape and exit

OPTIONS:
  --topologies LIST  topology specs, comma-separated (see --list-topologies)
  --modes LIST       swap policies by name (see --list-policies)
  --dist LIST        distillation overheads, e.g. 1,2,3
  --physics LIST     link-physics axis: ideal, decoherent:T2[:FLOOR]
                     (see --list-physics)                [ideal]
  --fabric LIST      link-fabric axis: none, PRESET or TOPO@PRESET
                     (see --list-fabrics)                [none]
  --gossip K         add a gossip knowledge axis (K peers per refresh)
  --knowledge LIST   explicit knowledge axis: global, gossip:K,
                     gossip:K:PERIOD (seconds)          [global]
  --pairs N          consumer pairs per workload        [10]
  --requests N       requests per run                   [12]
  --workload LIST    workload axis specs (comma-separated;
                     see --list-workloads)              [closed]
  --replicates N     replicates per cell                [6]
  --seed N           master seed                        [1]
  --horizon S        simulated-seconds horizon          [4000]
  --threads N        worker threads                     [all cores]
  --cache-dir DIR    reuse cached outcomes; append new ones (incremental
                     sweeps: a fully warm run simulates nothing)
  --shard I/N        run shard I of an N-way deterministic partition and
                     emit a shard file instead of the report
  --grid-file FILE   load the grid from a JSON descriptor instead of the
                     grid-shaping flags (how orchestrated workers get theirs)
  --progress FILE    stream seq-numbered JSONL progress events to FILE
                     (shard claimed / scenario / shard sealed)
  --out FILE         write JSONL report/shard to FILE   [stdout]
  --compare-serial   verify 1-thread determinism, print speedup
  --dry-run          print the grid shape and exit
  --list-policies    print the registered swap policies and exit
  --list-workloads   print the workload-spec grammar and exit
  --list-topologies  print the topology-spec grammar and exit
  --list-physics     print the physics-spec grammar and exit
  --list-fabrics     print the fabric-spec grammar and exit

Determinism: cold run ≡ warm (cached) run ≡ any shard partition after
`campaign merge` — all byte-identical JSONL reports.
";

const MERGE_USAGE: &str = "\
campaign merge — recombine shard files into the aggregate report

USAGE:
  campaign merge [--out FILE] SHARD_FILE...
  campaign merge [--out FILE] DIRECTORY

A directory argument stands for every sealed shard-*.jsonl inside it (or
inside its shards/ subdirectory — an orchestrator run directory merges
directly); in-flight .partial files are ignored.

Every shard file of the partition must be given exactly once, all from the
same grid (equal fingerprints). The merged JSONL report is byte-identical
to a single-process run of the full grid.
";

const ORCHESTRATE_USAGE: &str = "\
campaign orchestrate — multi-process supervised campaign run

USAGE:
  campaign orchestrate --workers N --run-dir DIR [OPTIONS] [GRID FLAGS]
  campaign orchestrate --resume DIR [OPTIONS]

Spawns N worker subprocesses (campaign --shard I/N --cache-dir …) over a
shared run directory and supervises them to completion: per-worker liveness
via progress-file heartbeats, dead/straggler detection and shard retry,
live partial reports as shards seal, and a final validated merge that is
byte-identical to an uninterrupted single-process run.

OPTIONS:
  --workers N            worker subprocesses = shard count (fresh runs)
  --run-dir DIR          the shared run directory (must not hold a run)
  --resume DIR           pick a killed/failed run back up; the directory's
                         manifest is the only source of truth (no grid
                         flags, no --workers)
  --out FILE             also write the merged report to FILE
                         (merged.jsonl in the run dir is always written)
  --worker-threads N     --threads per worker                    [1]
  --heartbeat-timeout S  kill a worker whose progress file has not grown
                         for S seconds, and retry its shard       [60]
  --max-attempts K       attempts per shard before the run fails  [3]
  --inject-abort I:N     testing hook: shard I's first attempt aborts
                         after N simulated scenarios
  --quiet                suppress the human progress line on stderr

Any other flag is passed through to the grid builder (--topologies,
--modes, --seed, … — see campaign --help). Progress: a human line on
stderr (done/total, cache hits, per-worker state, ETA); machine-readable
seq-numbered events in RUN_DIR/events.jsonl (no wall-clock timestamps).

A failed run exits nonzero and leaves the run directory resumable; resume
is byte-identical to an uninterrupted run.
";

const TOPOLOGIES_HELP: &str = "\
topology specs (--topologies LIST, comma-separated; each joins the grid's
topology axis):

  cycle:N        ring over N nodes (the paper's baseline family)
  path:N         simple path 0 - 1 - ... - N-1
  star:N         node 0 joined to every other node
  complete:N     complete graph on N nodes
  torus:S        S x S wraparound grid (N = S^2)
  grid:S         S x S planar grid (no wraparound)
  rand-grid:S    the paper's random connected grid over S x S nodes
  er:N:P         Erdos-Renyi G(N, P), resampled until connected
  ws:N:K:P       Watts-Strogatz small world: N nodes, K ring neighbours,
                 rewire probability P
  tree:N         uniformly random spanning tree on N nodes
  scale-free:N[:M]  Barabasi-Albert preferential attachment: N nodes, each
                 newcomer wiring M edges to degree-weighted targets
                 (default M = 2) — the internet-like heavy-tail family
  nyc-fiber      the deployed 12-node NYC metro fiber template with
                 heterogeneous link lengths (pairs naturally with
                 --fabric metro-fiber)

examples:

  campaign --topologies cycle:25,rand-grid:5
  campaign --topologies ws:25:4:0.1,ws:25:4:0.5 --modes oblivious,planned
";

const PHYSICS_HELP: &str = "\
physics specs (--physics LIST, comma-separated; each joins the grid's
link-physics axis):

  ideal                        the paper's idealisation (default): pairs are
                               ageless, noiseless tokens — results stay
                               byte-identical to pre-physics reports
  decoherent:T2                stored pairs decay under the Werner model
                               with memory coherence time T2 seconds; swaps
                               age both inputs to the swap time and compose
                               them (F_out = F1*F2 + (1-F1)(1-F2)/3); cells
                               gain fidelity_mean/p50/p95 report columns
  decoherent:T2:FLOOR          additionally require every delivery to meet
                               fidelity FLOOR: pairs are discarded once a
                               fresh pair of their age would fall below the
                               floor (expired_pairs_total column), and
                               deliveries below it count as rejected
                               (fidelity_rejected_total column)

elementary pairs are born at fidelity 0.98; consumption order and explicit
cutoff ages are available through the qnet API (PhysicsModel builders).

examples:

  # the decoherence knee: satisfaction and fidelity vs coherence time
  campaign --physics ideal,decoherent:8,decoherent:2,decoherent:0.5

  # fidelity-floor failures by discipline
  campaign --physics decoherent:2:0.7 --modes oblivious,planned,hybrid
";

const FABRICS_HELP: &str = "\
fabric specs (--fabric LIST, comma-separated; each joins the grid's
link-fabric axis):

  none                         homogeneous links (default): every edge
                               generates at the grid's uniform rate with
                               the global physics numbers — results stay
                               byte-identical to pre-fabric reports
  PRESET                       attach hardware-calibrated per-edge profiles
                               to every topology in the grid: each edge
                               draws a length from the preset's range
                               (seed-deterministic), and its generation
                               rate, birth fidelity and memory coherence
                               time derive from that length
  TOPO@PRESET                  additionally append TOPO (any --topologies
                               spec) to the topology axis, e.g.
                               scale-free:1000@metro-fiber

presets:

  lab                          tabletop links (5 m - 250 m): high rate,
                               F0 = 0.99, T2 = 10 s — calibrated to
                               trapped-ion testbed numbers
  metro-fiber                  deployed telecom fiber (1 - 30 km): 0.2
                               dB/km attenuation, F0 = 0.95 at zero
                               length, T2 = 1.5 s — calibrated to
                               metropolitan fiber testbed numbers

derivations (length L km): rate = base * 10^(-0.2 L / 10);
fidelity = 0.5 + (F0 - 0.5) * exp(-L / scale) — both strictly decreasing
in L, so long links are both slower and noisier, exactly the regime
path-oblivious balancing targets.

examples:

  # internet-scale heavy-tail graph on metro hardware
  campaign --fabric scale-free:1000@metro-fiber --modes oblivious,planned

  # the deployed NYC template, homogeneous vs calibrated
  campaign --topologies nyc-fiber --fabric none,metro-fiber
";

const WORKLOADS_HELP: &str = "\
workload specs (--workload LIST, comma-separated; each cell joins the
grid's workload axis):

  closed[:REQUESTS]            closed-loop batch: REQUESTS requests (default
                               --requests), all pending at t = 0, satisfied
                               in sequence order (the paper's §5 semantics)
  open-loop:RATE[:HORIZON]     open-loop Poisson arrivals at RATE requests
                               per simulated second for HORIZON simulated
                               seconds (default: the --horizon value);
                               reports gain sojourn-latency p50/p95 columns

selection suffix (how each request picks its consumer pair):

  @uniform                     independent uniform draws (default)
  @round-robin                 cycle deterministically through the pairs
  @zipf:S                      Zipf-skewed popularity with exponent S
                               (rank-r pair drawn ∝ 1/r^S)

examples:

  # offered-load sweep: satisfaction and latency vs arrival rate
  campaign --workload open-loop:0.5,open-loop:1,open-loop:2,open-loop:4

  # skewed open-loop demand vs the closed-loop baseline
  campaign --workload closed:35,open-loop:1@zipf:1.1
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_grid_is_the_108_scenario_sweep() {
        let opts = parse_args(&[]).unwrap();
        let grid = build_grid(&opts);
        // 3 topologies × 3 modes × 2 D × 1 knowledge × 1 workload × 6
        // replicates — the default smoke sweep CI runs.
        assert_eq!(grid.cell_count(), 18);
        assert_eq!(grid.scenario_count(), 108);
    }

    #[test]
    fn unknown_mode_error_enumerates_the_registry() {
        let err = parse_args(&args(&["--modes", "oblivious,bogus"])).unwrap_err();
        assert!(err.contains("unknown policy 'bogus'"), "{err}");
        // The error names the valid policies rather than failing bare.
        for name in ["oblivious", "planned", "hybrid", "connectionless", "greedy"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn unknown_workload_error_enumerates_the_grammar() {
        let err = parse_args(&args(&["--workload", "bursty:3"])).unwrap_err();
        assert!(err.contains("unknown traffic model 'bursty'"), "{err}");
        assert!(err.contains("closed") && err.contains("open-loop"), "{err}");

        let err = parse_args(&args(&["--workload", "closed:5@hot"])).unwrap_err();
        assert!(err.contains("unknown selection '@hot'"), "{err}");
        for name in ["@uniform", "@round-robin", "@zipf:S"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn unknown_topology_error_enumerates_the_families() {
        let err = parse_args(&args(&["--topologies", "moebius:9"])).unwrap_err();
        assert!(err.contains("unknown topology family 'moebius'"), "{err}");
        for name in ["cycle", "rand-grid", "ws", "tree"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
    }

    #[test]
    fn unknown_physics_error_enumerates_the_grammar() {
        let err = parse_args(&args(&["--physics", "ideal,noisy:3"])).unwrap_err();
        assert!(err.contains("unknown physics model 'noisy'"), "{err}");
        for name in ["ideal", "decoherent:T2", "decoherent:T2:FLOOR"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        // Malformed parameters fail loudly too.
        assert!(parse_args(&args(&["--physics", "decoherent"])).is_err());
        assert!(parse_args(&args(&["--physics", "decoherent:0"])).is_err());
        assert!(parse_args(&args(&["--physics", "decoherent:1:2"])).is_err());
    }

    #[test]
    fn physics_flag_builds_the_axis() {
        let opts = parse_args(&args(&["--physics", "ideal,decoherent:2:0.7"])).unwrap();
        let grid = build_grid(&opts);
        assert_eq!(grid.physics.len(), 2);
        assert!(grid.physics[0].is_ideal());
        assert_eq!(grid.physics[1].fidelity_floor(), Some(0.7));
        // The axis doubles the default 108-scenario sweep.
        assert_eq!(grid.scenario_count(), 216);
    }

    #[test]
    fn shard_flag_parses_and_rejects_nonsense() {
        let opts = parse_args(&args(&["--shard", "2/5"])).unwrap();
        assert_eq!(opts.shard, Some(ShardSpec { index: 2, count: 5 }));
        assert!(parse_args(&args(&["--shard", "5/5"])).is_err());
        assert!(parse_args(&args(&["--shard", "x"])).is_err());
        assert!(
            parse_args(&args(&["--shard", "0/2", "--compare-serial"])).is_err(),
            "--compare-serial is a full-grid check"
        );
    }

    #[test]
    fn cache_dir_flag_is_recorded() {
        let opts = parse_args(&args(&["--cache-dir", "/tmp/qnet-cache"])).unwrap();
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/qnet-cache"));
    }

    #[test]
    fn list_flags_surface_as_control_errors() {
        assert_eq!(
            parse_args(&args(&["--list-topologies"])).unwrap_err(),
            "list-topologies"
        );
        assert_eq!(
            parse_args(&args(&["--list-policies"])).unwrap_err(),
            "list-policies"
        );
        assert_eq!(
            parse_args(&args(&["--list-workloads"])).unwrap_err(),
            "list-workloads"
        );
        assert_eq!(
            parse_args(&args(&["--list-physics"])).unwrap_err(),
            "list-physics"
        );
        assert_eq!(
            parse_args(&args(&["--list-fabrics"])).unwrap_err(),
            "list-fabrics"
        );
    }

    #[test]
    fn default_grid_has_no_fabric_axis_and_keeps_its_fingerprint() {
        let opts = parse_args(&[]).unwrap();
        let grid = build_grid(&opts);
        assert_eq!(grid.fabrics, vec![None]);
        // The default 108-scenario sweep must keep its pre-fabric content
        // address, or every cached outcome and shard file goes stale.
        assert_eq!(grid.fingerprint().to_hex(), "3d0ceedd6e2ff513");
    }

    #[test]
    fn fabric_flag_builds_the_axis_and_topology_riders() {
        use qnet_topology::HardwarePreset;
        let opts =
            parse_args(&args(&["--fabric", "none,scale-free:1000@metro-fiber,lab"])).unwrap();
        let grid = build_grid(&opts);
        assert_eq!(
            grid.fabrics,
            vec![
                None,
                Some(FabricSpec::new(HardwarePreset::MetroFiber)),
                Some(FabricSpec::new(HardwarePreset::Lab)),
            ]
        );
        // The @TOPO rider joined the topology axis after the defaults.
        assert_eq!(grid.topologies.len(), 4);
        assert_eq!(
            grid.topologies[3],
            Topology::ScaleFree {
                nodes: 1000,
                attach: 2
            }
        );
        // 4 topologies × 3 modes × 2 D × 3 fabrics × 6 replicates.
        assert_eq!(grid.scenario_count(), 4 * 3 * 2 * 3 * 6);
    }

    #[test]
    fn fabric_errors_enumerate_the_presets() {
        let err = parse_args(&args(&["--fabric", "cryo"])).unwrap_err();
        assert!(err.contains("unknown hardware preset `cryo`"), "{err}");
        for name in ["lab", "metro-fiber"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        // A bad topology rider fails loudly too.
        assert!(parse_args(&args(&["--fabric", "moebius:9@lab"])).is_err());
    }

    #[test]
    fn scale_free_and_nyc_fiber_topology_specs_parse() {
        assert_eq!(
            parse_topology("scale-free:50").unwrap(),
            Topology::ScaleFree {
                nodes: 50,
                attach: 2
            }
        );
        assert_eq!(
            parse_topology("scale-free:50:3").unwrap(),
            Topology::ScaleFree {
                nodes: 50,
                attach: 3
            }
        );
        assert_eq!(
            parse_topology("nyc-fiber").unwrap(),
            Topology::DeployedFiber
        );
        assert!(parse_topology("nyc-fiber:3").is_err());
        assert!(parse_topology("scale-free").is_err());
    }
}
