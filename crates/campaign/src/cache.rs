//! Content-addressed scenario-outcome cache.
//!
//! Scenario seeds derive from `(master seed, environment, replicate)`, so a
//! [`ScenarioOutcome`] is a pure function of its grid cell — the same
//! scenario re-run always produces the same outcome. That purity makes
//! outcomes cacheable by content: the cache key is
//! `(grid fingerprint, scenario id)`, where the fingerprint
//! ([`ScenarioGrid::fingerprint`]) covers every axis value, the master seed
//! and the run parameters. Repeated sweeps become incremental (a warm run
//! executes zero simulations), and overlapping sweeps only pay for the cells
//! they add.
//!
//! ## On-disk layout
//!
//! One append-only JSONL file per grid under the cache directory:
//!
//! ```text
//! <cache-dir>/outcomes-<fingerprint-hex>.jsonl
//! ```
//!
//! Each line is a self-describing record:
//!
//! ```json
//! {"kind":"outcome","fingerprint":"<16 hex digits>","outcome":{...}}
//! ```
//!
//! The fingerprint inside every line is deliberately redundant with the file
//! name: a record is only served if its own fingerprint matches the grid
//! being run, so a file renamed, concatenated or corrupted by a partial
//! write cannot poison a report. Unreadable lines, fingerprint mismatches,
//! out-of-range scenario ids and records whose `(cell, replicate)`
//! coordinates disagree with their id are all **rejected** (counted, never
//! served) and the runner falls back to recomputation — a damaged cache
//! costs time, never correctness.
//!
//! Floats round-trip exactly through the JSONL encoding (shortest
//! round-trip formatting), so a report aggregated from cached outcomes is
//! **byte-identical** to one aggregated from fresh simulations — the
//! property the warm-run integration tests pin down.

use crate::grid::{GridFingerprint, ScenarioGrid};
use crate::runner::ScenarioOutcome;
use serde::{Deserialize, Serialize};
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One cache line: an outcome tagged with the grid fingerprint it belongs
/// to. The `kind` tag is added/checked at the JSONL layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheRecord {
    /// The grid the outcome was computed under.
    fingerprint: GridFingerprint,
    /// The cached outcome (carries its own scenario id).
    outcome: ScenarioOutcome,
}

/// Encode one outcome as a self-describing cache/shard JSONL line.
pub(crate) fn encode_outcome_line(
    fingerprint: GridFingerprint,
    outcome: &ScenarioOutcome,
) -> String {
    let record = CacheRecord {
        fingerprint,
        outcome: outcome.clone(),
    };
    let mut value = serde_json::to_value(&record).expect("record to_value");
    if let serde_json::Value::Map(entries) = &mut value {
        entries.insert(
            0,
            ("kind".to_string(), serde_json::Value::Str("outcome".into())),
        );
    }
    serde_json::to_string(&value).expect("record to_string")
}

/// Decode one outcome line, enforcing every integrity check the cache
/// relies on. Returns the outcome only if the line is well-formed JSON,
/// tagged `"kind":"outcome"`, carries the expected fingerprint, addresses a
/// scenario inside `0..scenario_count`, and its `(cell, replicate)`
/// coordinates are consistent with its id under `replicates`.
pub(crate) fn decode_outcome_line(
    line: &str,
    expected: GridFingerprint,
    scenario_count: usize,
    replicates: u32,
) -> Option<ScenarioOutcome> {
    let value: serde_json::Value = serde_json::from_str(line).ok()?;
    if value.get_field("kind").and_then(|k| k.as_str()) != Some("outcome") {
        return None;
    }
    let record: CacheRecord = serde_json::from_value(value).ok()?;
    if record.fingerprint != expected {
        return None;
    }
    let outcome = record.outcome;
    if outcome.id >= scenario_count {
        return None;
    }
    let replicates = replicates.max(1) as usize;
    if outcome.cell != outcome.id / replicates
        || outcome.replicate as usize != outcome.id % replicates
    {
        return None;
    }
    Some(outcome)
}

/// A loaded outcome cache for one specific grid.
///
/// Open with [`OutcomeCache::open`]; the runner consults it with
/// [`OutcomeCache::get`] before simulating a scenario and appends fresh
/// outcomes with [`OutcomeCache::append`]. See the module docs for the
/// on-disk layout and integrity rules.
#[derive(Debug)]
pub struct OutcomeCache {
    path: PathBuf,
    fingerprint: GridFingerprint,
    /// Dense slot per scenario id (`None` = not cached).
    entries: Vec<Option<ScenarioOutcome>>,
    /// Lines rejected while loading (corrupt, foreign or out-of-range).
    rejected_lines: usize,
}

impl OutcomeCache {
    /// Open (creating the directory if needed) the cache file for `grid`
    /// under `dir` and load every valid record. Damaged or foreign lines
    /// are counted in [`OutcomeCache::rejected_lines`] and skipped.
    pub fn open(dir: &Path, grid: &ScenarioGrid) -> io::Result<OutcomeCache> {
        fs::create_dir_all(dir)?;
        let fingerprint = grid.fingerprint();
        let path = dir.join(format!("outcomes-{}.jsonl", fingerprint.to_hex()));
        let scenario_count = grid.scenario_count();
        let mut entries: Vec<Option<ScenarioOutcome>> = Vec::new();
        entries.resize_with(scenario_count, || None);
        let mut rejected_lines = 0usize;

        match fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    if line.is_empty() {
                        continue;
                    }
                    match decode_outcome_line(line, fingerprint, scenario_count, grid.replicates) {
                        // Later lines win, so a re-appended correction
                        // supersedes an earlier record.
                        Some(outcome) => {
                            let id = outcome.id;
                            entries[id] = Some(outcome);
                        }
                        None => rejected_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        Ok(OutcomeCache {
            path,
            fingerprint,
            entries,
            rejected_lines,
        })
    }

    /// The cache file this cache reads and appends.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fingerprint of the grid this cache serves.
    pub fn fingerprint(&self) -> GridFingerprint {
        self.fingerprint
    }

    /// The cached outcome for scenario `id`, if present.
    pub fn get(&self, id: usize) -> Option<&ScenarioOutcome> {
        self.entries.get(id).and_then(Option::as_ref)
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True if no outcome is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// Lines skipped while loading because they were corrupt, carried a
    /// foreign fingerprint, or addressed a scenario outside the grid.
    pub fn rejected_lines(&self) -> usize {
        self.rejected_lines
    }

    /// Append freshly computed outcomes to the cache file (and the
    /// in-memory index). Append-only: existing bytes are never rewritten,
    /// so concurrent readers and interrupted writers cannot lose data —
    /// at worst a truncated final line is rejected on the next load.
    pub fn append(&mut self, outcomes: &[ScenarioOutcome]) -> io::Result<()> {
        if outcomes.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for outcome in outcomes {
            buf.push_str(&encode_outcome_line(self.fingerprint, outcome));
            buf.push('\n');
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(buf.as_bytes())?;
        for outcome in outcomes {
            if let Some(slot) = self.entries.get_mut(outcome.id) {
                *slot = Some(outcome.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnet_core::policy::PolicyId;
    use qnet_core::workload::WorkloadSpec;
    use qnet_topology::Topology;

    fn test_grid() -> ScenarioGrid {
        ScenarioGrid::new(5)
            .with_topologies(vec![Topology::Cycle { nodes: 5 }])
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
            .with_replicates(2)
            .with_horizon_s(300.0)
    }

    fn outcome(id: usize, replicates: usize) -> ScenarioOutcome {
        ScenarioOutcome {
            id,
            cell: id / replicates,
            replicate: (id % replicates) as u32,
            seed: 42,
            swap_overhead: Some(1.25),
            satisfied_requests: 4,
            arrived_requests: 4,
            unsatisfied_requests: 0,
            swaps_performed: 7,
            pairs_generated: 30,
            simulated_seconds: 123.456,
            count_update_messages: 9,
            latency_mean_s: None,
            latency_p50_s: None,
            latency_p95_s: None,
            fidelity_mean: None,
            fidelity_p50: None,
            fidelity_p95: None,
            expired_pairs: 0,
            fidelity_rejected: 0,
            missed_swaps: 0,
            stale_row_age_mean_s: None,
            stale_row_age_p95_s: None,
            sketch_quantiles: false,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qnet-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn outcomes_round_trip_through_the_cache_file() {
        let dir = temp_dir("roundtrip");
        let grid = test_grid();
        let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.rejected_lines(), 0);

        let written = vec![outcome(0, 2), outcome(3, 2)];
        cache.append(&written).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(0), Some(&written[0]));
        assert_eq!(cache.get(1), None);

        // A fresh open reads the same records back, bit-exact floats
        // included.
        let reopened = OutcomeCache::open(&dir, &grid).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get(3), Some(&written[1]));
        assert_eq!(reopened.rejected_lines(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn caches_are_isolated_by_fingerprint() {
        let dir = temp_dir("isolated");
        let grid_a = test_grid();
        let mut grid_b = test_grid();
        grid_b.master_seed += 1;
        let mut cache_a = OutcomeCache::open(&dir, &grid_a).unwrap();
        cache_a.append(&[outcome(0, 2)]).unwrap();
        // Different fingerprint → different file → nothing shared.
        let cache_b = OutcomeCache::open(&dir, &grid_b).unwrap();
        assert_ne!(cache_a.path(), cache_b.path());
        assert!(cache_b.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_lines_are_rejected_not_served() {
        let dir = temp_dir("poison");
        let grid = test_grid();
        let fingerprint = grid.fingerprint();
        let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
        cache.append(&[outcome(1, 2)]).unwrap();
        let path = cache.path().to_path_buf();

        // Poison the file four ways: a foreign-fingerprint record, a
        // truncated line, an out-of-range scenario id, and coordinates that
        // disagree with the id.
        let mut grid_other = test_grid();
        grid_other.master_seed += 99;
        let foreign = encode_outcome_line(grid_other.fingerprint(), &outcome(0, 2));
        let valid = encode_outcome_line(fingerprint, &outcome(2, 2));
        let truncated = &valid[..valid.len() / 2];
        let out_of_range = encode_outcome_line(fingerprint, &outcome(grid.scenario_count(), 2));
        let mut mismatched = outcome(3, 2);
        mismatched.cell = 0; // id 3 belongs to cell 1 under 2 replicates
        let mismatched = encode_outcome_line(fingerprint, &mismatched);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(&format!(
            "{foreign}\n{truncated}\n{out_of_range}\n{mismatched}\nnot json at all\n"
        ));
        fs::write(&path, text).unwrap();

        let reopened = OutcomeCache::open(&dir, &grid).unwrap();
        assert_eq!(reopened.len(), 1, "only the healthy record survives");
        assert_eq!(reopened.get(1), Some(&outcome(1, 2)));
        assert_eq!(reopened.get(0), None);
        assert_eq!(reopened.get(2), None);
        assert_eq!(reopened.get(3), None);
        assert_eq!(reopened.rejected_lines(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_lines_supersede_earlier_ones() {
        let dir = temp_dir("supersede");
        let grid = test_grid();
        let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
        let mut first = outcome(0, 2);
        first.swaps_performed = 1;
        let mut second = outcome(0, 2);
        second.swaps_performed = 2;
        cache.append(&[first]).unwrap();
        cache.append(&[second.clone()]).unwrap();
        let reopened = OutcomeCache::open(&dir, &grid).unwrap();
        assert_eq!(reopened.get(0), Some(&second));
        let _ = fs::remove_dir_all(&dir);
    }
}
