//! Per-cell streaming aggregation and report rendering.
//!
//! Aggregation consumes [`ScenarioOutcome`]s strictly in scenario-id order
//! (the runner guarantees that order regardless of thread count), folding
//! each cell's replicates into a [`CellReport`]: Welford mean/variance of
//! the swap overhead, exact percentiles over the replicate samples, a 95%
//! normal-approximation confidence interval, and satisfaction / swap /
//! message totals. A second pass pairs oblivious cells with their
//! planned-mode twins into [`OverheadRatioRow`]s — the oblivious-vs-planned
//! comparison behind the paper's Figures 4 and 5.
//!
//! Reports serialize to JSON lines: one self-describing object per line
//! (`"kind": "cell"` / `"ratio"` / `"campaign"`), so sweeps can be streamed,
//! `grep`ed and diffed. All numeric content derives from seeded simulation
//! only — byte-identical across runs and thread counts, and equally across
//! execution modes: outcomes replayed from the [`crate::cache::OutcomeCache`]
//! or recombined from shard files by [`crate::shard::merge_shards`] flow
//! through this exact aggregation path (the same `RunningStats` /
//! `ci95_half_width` machinery), so cold, warm and merged reports cannot
//! diverge.

use crate::grid::{CellKey, ScenarioGrid};
use crate::runner::{CampaignResult, ScenarioOutcome};
use qnet_core::policy::{PolicyFamily, PolicyId};
use qnet_sim::stats::{percentile_of_sorted, RunningStats};
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// Aggregated statistics over one cell's replicates.
///
/// Serialization: the latency columns are emitted only when present
/// (open-loop cells), and the fidelity/expiry columns only when populated
/// (decoherent-physics cells), so legacy reports keep the exact legacy byte
/// layout — see the manual impls below.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The cell's axis values.
    pub key: CellKey,
    /// Replicates executed.
    pub replicates: u32,
    /// Replicates whose swap-overhead denominator was non-zero.
    pub overhead_samples: u64,
    /// Mean swap overhead over the valid samples (`None` if none).
    pub overhead_mean: Option<f64>,
    /// Unbiased sample variance of the swap overhead.
    pub overhead_variance: Option<f64>,
    /// Half-width of the 95% confidence interval on the mean
    /// (normal approximation, `1.96·σ/√n`; `None` below 2 samples).
    pub overhead_ci95: Option<f64>,
    /// 10th/50th/90th percentile of the swap overhead samples.
    pub overhead_p10: Option<f64>,
    /// Median swap overhead.
    pub overhead_p50: Option<f64>,
    /// 90th percentile swap overhead.
    pub overhead_p90: Option<f64>,
    /// Minimum observed overhead.
    pub overhead_min: Option<f64>,
    /// Maximum observed overhead.
    pub overhead_max: Option<f64>,
    /// Mean satisfaction ratio over all replicates.
    pub satisfaction_mean: f64,
    /// Total swaps across replicates.
    pub swaps_total: u64,
    /// Total Bell pairs generated across replicates.
    pub pairs_generated_total: u64,
    /// Mean simulated seconds per replicate.
    pub simulated_seconds_mean: f64,
    /// Total classical count-update messages across replicates.
    pub count_update_messages_total: u64,
    /// Mean of the per-replicate mean sojourn latencies, in simulated
    /// seconds (open-loop cells with at least one satisfaction only).
    pub latency_mean_s: Option<f64>,
    /// Half-width of the 95% CI on the mean sojourn latency
    /// (`None` below 2 latency samples).
    pub latency_ci95_s: Option<f64>,
    /// Mean of the per-replicate median sojourn latencies.
    pub latency_p50_s: Option<f64>,
    /// Mean of the per-replicate 95th-percentile sojourn latencies.
    pub latency_p95_s: Option<f64>,
    /// Mean of the per-replicate mean delivered fidelities
    /// (decoherent-physics cells with at least one satisfaction only).
    pub fidelity_mean: Option<f64>,
    /// Half-width of the 95% CI on the mean delivered fidelity
    /// (`None` below 2 fidelity samples).
    pub fidelity_ci95: Option<f64>,
    /// Mean of the per-replicate median delivered fidelities.
    pub fidelity_p50: Option<f64>,
    /// Mean of the per-replicate 95th-percentile delivered fidelities.
    pub fidelity_p95: Option<f64>,
    /// Total pairs discarded by the physics cutoff across replicates.
    pub expired_pairs_total: u64,
    /// Total deliveries rejected below the fidelity floor across
    /// replicates.
    pub fidelity_rejected_total: u64,
    /// Total believed-feasible actions that failed against drifted truth
    /// across replicates (stale-control-plane cells only).
    pub missed_swaps_total: u64,
    /// Mean of the per-replicate mean believed-row ages at decision time,
    /// seconds (stale cells with at least one stale decision only).
    pub stale_row_age_mean_s: Option<f64>,
    /// Mean of the per-replicate 95th-percentile believed-row ages.
    pub stale_row_age_p95_s: Option<f64>,
}

impl Serialize for CellReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("key".to_string(), self.key.to_value()),
            ("replicates".to_string(), self.replicates.to_value()),
            (
                "overhead_samples".to_string(),
                self.overhead_samples.to_value(),
            ),
            ("overhead_mean".to_string(), self.overhead_mean.to_value()),
            (
                "overhead_variance".to_string(),
                self.overhead_variance.to_value(),
            ),
            ("overhead_ci95".to_string(), self.overhead_ci95.to_value()),
            ("overhead_p10".to_string(), self.overhead_p10.to_value()),
            ("overhead_p50".to_string(), self.overhead_p50.to_value()),
            ("overhead_p90".to_string(), self.overhead_p90.to_value()),
            ("overhead_min".to_string(), self.overhead_min.to_value()),
            ("overhead_max".to_string(), self.overhead_max.to_value()),
            (
                "satisfaction_mean".to_string(),
                self.satisfaction_mean.to_value(),
            ),
            ("swaps_total".to_string(), self.swaps_total.to_value()),
            (
                "pairs_generated_total".to_string(),
                self.pairs_generated_total.to_value(),
            ),
            (
                "simulated_seconds_mean".to_string(),
                self.simulated_seconds_mean.to_value(),
            ),
            (
                "count_update_messages_total".to_string(),
                self.count_update_messages_total.to_value(),
            ),
        ];
        // Latency columns exist only for open-loop cells, and fidelity
        // columns only for decoherent-physics cells; omitting them (rather
        // than writing null) keeps legacy reports byte-identical.
        for (name, value) in [
            ("latency_mean_s", self.latency_mean_s),
            ("latency_ci95_s", self.latency_ci95_s),
            ("latency_p50_s", self.latency_p50_s),
            ("latency_p95_s", self.latency_p95_s),
            ("fidelity_mean", self.fidelity_mean),
            ("fidelity_ci95", self.fidelity_ci95),
            ("fidelity_p50", self.fidelity_p50),
            ("fidelity_p95", self.fidelity_p95),
        ] {
            if let Some(v) = value {
                entries.push((name.to_string(), v.to_value()));
            }
        }
        if self.expired_pairs_total > 0 {
            entries.push((
                "expired_pairs_total".to_string(),
                self.expired_pairs_total.to_value(),
            ));
        }
        if self.fidelity_rejected_total > 0 {
            entries.push((
                "fidelity_rejected_total".to_string(),
                self.fidelity_rejected_total.to_value(),
            ));
        }
        // Staleness columns join only for stale-control-plane cells, so
        // global-knowledge reports keep the legacy byte layout.
        if self.missed_swaps_total > 0 {
            entries.push((
                "missed_swaps_total".to_string(),
                self.missed_swaps_total.to_value(),
            ));
        }
        for (name, value) in [
            ("stale_row_age_mean_s", self.stale_row_age_mean_s),
            ("stale_row_age_p95_s", self.stale_row_age_p95_s),
        ] {
            if let Some(v) = value {
                entries.push((name.to_string(), v.to_value()));
            }
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for CellReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        if value.as_map().is_none() {
            return Err(serde::DeError::expected("CellReport object", value));
        }
        let field = |name: &str| value.get_field(name).unwrap_or(&serde::Value::Null);
        let counter = |name: &str| -> Result<u64, serde::DeError> {
            match field(name) {
                serde::Value::Null => Ok(0),
                v => Deserialize::from_value(v),
            }
        };
        Ok(CellReport {
            key: Deserialize::from_value(field("key"))?,
            replicates: Deserialize::from_value(field("replicates"))?,
            overhead_samples: Deserialize::from_value(field("overhead_samples"))?,
            overhead_mean: Deserialize::from_value(field("overhead_mean"))?,
            overhead_variance: Deserialize::from_value(field("overhead_variance"))?,
            overhead_ci95: Deserialize::from_value(field("overhead_ci95"))?,
            overhead_p10: Deserialize::from_value(field("overhead_p10"))?,
            overhead_p50: Deserialize::from_value(field("overhead_p50"))?,
            overhead_p90: Deserialize::from_value(field("overhead_p90"))?,
            overhead_min: Deserialize::from_value(field("overhead_min"))?,
            overhead_max: Deserialize::from_value(field("overhead_max"))?,
            satisfaction_mean: Deserialize::from_value(field("satisfaction_mean"))?,
            swaps_total: Deserialize::from_value(field("swaps_total"))?,
            pairs_generated_total: Deserialize::from_value(field("pairs_generated_total"))?,
            simulated_seconds_mean: Deserialize::from_value(field("simulated_seconds_mean"))?,
            count_update_messages_total: Deserialize::from_value(field(
                "count_update_messages_total",
            ))?,
            latency_mean_s: Deserialize::from_value(field("latency_mean_s"))?,
            latency_ci95_s: Deserialize::from_value(field("latency_ci95_s"))?,
            latency_p50_s: Deserialize::from_value(field("latency_p50_s"))?,
            latency_p95_s: Deserialize::from_value(field("latency_p95_s"))?,
            fidelity_mean: Deserialize::from_value(field("fidelity_mean"))?,
            fidelity_ci95: Deserialize::from_value(field("fidelity_ci95"))?,
            fidelity_p50: Deserialize::from_value(field("fidelity_p50"))?,
            fidelity_p95: Deserialize::from_value(field("fidelity_p95"))?,
            expired_pairs_total: counter("expired_pairs_total")?,
            fidelity_rejected_total: counter("fidelity_rejected_total")?,
            missed_swaps_total: counter("missed_swaps_total")?,
            stale_row_age_mean_s: Deserialize::from_value(field("stale_row_age_mean_s"))?,
            stale_row_age_p95_s: Deserialize::from_value(field("stale_row_age_p95_s"))?,
        })
    }
}

/// Oblivious-vs-planned comparison for one matched pair of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRatioRow {
    /// Topology label shared by both cells.
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Distillation overhead `D`.
    pub distillation: f64,
    /// Requests per run.
    pub requests: usize,
    /// The numerator policy (an oblivious-family policy).
    pub numerator_mode: PolicyId,
    /// The denominator policy (a planned-family policy).
    pub denominator_mode: PolicyId,
    /// Mean overhead of the numerator cell.
    pub numerator_overhead: f64,
    /// Mean overhead of the denominator cell.
    pub denominator_overhead: f64,
    /// `numerator / denominator` (the Fig 4/5 comparison).
    pub ratio: f64,
}

/// A whole campaign: header metadata plus the per-cell reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Master seed the grid ran with.
    pub master_seed: u64,
    /// Cells in the grid.
    pub cells: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Replicates per cell.
    pub replicates: u32,
    /// The per-cell aggregates, in cell order.
    pub cell_reports: Vec<CellReport>,
    /// Matched oblivious-vs-planned ratios.
    pub ratios: Vec<OverheadRatioRow>,
}

/// Fold one cell's outcomes (already in replicate order) into a report.
fn aggregate_cell(key: CellKey, outcomes: &[ScenarioOutcome]) -> CellReport {
    let mut overhead = RunningStats::new();
    let mut samples: Vec<f64> = Vec::with_capacity(outcomes.len());
    let mut satisfaction = 0.0f64;
    let mut swaps_total = 0u64;
    let mut pairs_total = 0u64;
    let mut sim_seconds = 0.0f64;
    let mut messages = 0u64;
    // Sojourn latency and delivered fidelity flow through the same
    // RunningStats/CI machinery as the swap overhead, so closed-/open-loop
    // and ideal-/decoherent-physics rows share one aggregation path (the
    // columns simply stay empty for cells whose outcomes carry no samples).
    let mut latency_mean = RunningStats::new();
    let mut latency_p50 = RunningStats::new();
    let mut latency_p95 = RunningStats::new();
    let mut fidelity_mean = RunningStats::new();
    let mut fidelity_p50 = RunningStats::new();
    let mut fidelity_p95 = RunningStats::new();
    let mut expired_total = 0u64;
    let mut rejected_total = 0u64;
    let mut missed_total = 0u64;
    let mut stale_age_mean = RunningStats::new();
    let mut stale_age_p95 = RunningStats::new();

    for o in outcomes {
        if let Some(x) = o.swap_overhead {
            overhead.record(x);
            samples.push(x);
        }
        satisfaction += o.satisfaction_ratio();
        swaps_total += o.swaps_performed;
        pairs_total += o.pairs_generated;
        sim_seconds += o.simulated_seconds;
        messages += o.count_update_messages;
        if let Some(x) = o.latency_mean_s {
            latency_mean.record(x);
        }
        if let Some(x) = o.latency_p50_s {
            latency_p50.record(x);
        }
        if let Some(x) = o.latency_p95_s {
            latency_p95.record(x);
        }
        if let Some(x) = o.fidelity_mean {
            fidelity_mean.record(x);
        }
        if let Some(x) = o.fidelity_p50 {
            fidelity_p50.record(x);
        }
        if let Some(x) = o.fidelity_p95 {
            fidelity_p95.record(x);
        }
        expired_total += o.expired_pairs;
        rejected_total += o.fidelity_rejected;
        missed_total += o.missed_swaps;
        if let Some(x) = o.stale_row_age_mean_s {
            stale_age_mean.record(x);
        }
        if let Some(x) = o.stale_row_age_p95_s {
            stale_age_p95.record(x);
        }
    }
    samples.sort_by(f64::total_cmp);

    let n = overhead.count();
    let replicates = outcomes.len() as u32;
    let ci95 = overhead.ci95_half_width();

    CellReport {
        key,
        replicates,
        overhead_samples: n,
        overhead_mean: (n > 0).then(|| overhead.mean()),
        overhead_variance: (n > 1).then(|| overhead.variance()),
        overhead_ci95: ci95,
        overhead_p10: percentile_of_sorted(&samples, 0.10),
        overhead_p50: percentile_of_sorted(&samples, 0.50),
        overhead_p90: percentile_of_sorted(&samples, 0.90),
        overhead_min: overhead.min(),
        overhead_max: overhead.max(),
        satisfaction_mean: if replicates == 0 {
            1.0
        } else {
            satisfaction / replicates as f64
        },
        swaps_total,
        pairs_generated_total: pairs_total,
        simulated_seconds_mean: if replicates == 0 {
            0.0
        } else {
            sim_seconds / replicates as f64
        },
        count_update_messages_total: messages,
        latency_mean_s: (latency_mean.count() > 0).then(|| latency_mean.mean()),
        latency_ci95_s: latency_mean.ci95_half_width(),
        latency_p50_s: (latency_p50.count() > 0).then(|| latency_p50.mean()),
        latency_p95_s: (latency_p95.count() > 0).then(|| latency_p95.mean()),
        fidelity_mean: (fidelity_mean.count() > 0).then(|| fidelity_mean.mean()),
        fidelity_ci95: fidelity_mean.ci95_half_width(),
        fidelity_p50: (fidelity_p50.count() > 0).then(|| fidelity_p50.mean()),
        fidelity_p95: (fidelity_p95.count() > 0).then(|| fidelity_p95.mean()),
        expired_pairs_total: expired_total,
        fidelity_rejected_total: rejected_total,
        missed_swaps_total: missed_total,
        stale_row_age_mean_s: (stale_age_mean.count() > 0).then(|| stale_age_mean.mean()),
        stale_row_age_p95_s: (stale_age_p95.count() > 0).then(|| stale_age_p95.mean()),
    }
}

/// True for the oblivious policy family (ratio numerators).
fn is_oblivious_family(mode: PolicyId) -> bool {
    mode.family() == PolicyFamily::Oblivious
}

/// True for the planned-path family (ratio denominators).
fn is_planned_family(mode: PolicyId) -> bool {
    mode.family() == PolicyFamily::Planned
}

/// Pair each oblivious-family cell with every planned-family cell that
/// matches it on all non-mode axes, and compute the overhead ratio.
pub fn overhead_ratios(cell_reports: &[CellReport]) -> Vec<OverheadRatioRow> {
    let mut rows = Vec::new();
    for num in cell_reports {
        if !is_oblivious_family(num.key.mode) {
            continue;
        }
        let Some(num_overhead) = num.overhead_mean else {
            continue;
        };
        for den in cell_reports {
            if !is_planned_family(den.key.mode) {
                continue;
            }
            let same_axes = num.key.topology == den.key.topology
                && num.key.distillation == den.key.distillation
                && num.key.knowledge == den.key.knowledge
                && num.key.consumer_pairs == den.key.consumer_pairs
                && num.key.requests == den.key.requests
                && num.key.discipline == den.key.discipline
                && num.key.coherence_time_s == den.key.coherence_time_s
                && num.key.physics == den.key.physics
                && num.key.traffic == den.key.traffic;
            if !same_axes {
                continue;
            }
            let Some(den_overhead) = den.overhead_mean else {
                continue;
            };
            if den_overhead <= 0.0 {
                continue;
            }
            rows.push(OverheadRatioRow {
                topology: num.key.topology.clone(),
                nodes: num.key.nodes,
                distillation: num.key.distillation,
                requests: num.key.requests,
                numerator_mode: num.key.mode,
                denominator_mode: den.key.mode,
                numerator_overhead: num_overhead,
                denominator_overhead: den_overhead,
                ratio: num_overhead / den_overhead,
            });
        }
    }
    rows
}

/// Aggregate a finished campaign into its deterministic report.
///
/// # Panics
/// Panics if `result` does not cover the grid densely — a single shard's
/// result cannot be aggregated on its own; recombine the partition with
/// [`crate::shard::merge_shards`] first.
pub fn aggregate(grid: &ScenarioGrid, result: &CampaignResult) -> CampaignReport {
    assert_eq!(
        result.outcomes.len(),
        grid.scenario_count(),
        "aggregate needs the dense outcome vector (merge shard results first)"
    );
    let replicates = grid.replicates as usize;
    let mut cell_reports = Vec::with_capacity(grid.cell_count());
    for cell in 0..grid.cell_count() {
        let start = cell * replicates;
        let end = start + replicates;
        let outcomes = &result.outcomes[start..end];
        debug_assert!(outcomes.iter().all(|o| o.cell == cell));
        cell_reports.push(aggregate_cell(grid.cell_key(cell), outcomes));
    }
    let ratios = overhead_ratios(&cell_reports);
    CampaignReport {
        master_seed: grid.master_seed,
        cells: grid.cell_count(),
        scenarios: grid.scenario_count(),
        replicates: grid.replicates,
        cell_reports,
        ratios,
    }
}

/// Aggregate a **partially covered** campaign: only cells whose replicates
/// are all present produce a [`CellReport`] (and join the ratio pass);
/// incomplete cells are silently skipped. `outcomes` may arrive in any
/// order and may contain duplicates (later entries win, mirroring the
/// cache's supersede rule).
///
/// This is the live-merge path of the orchestrator: as shards seal, the
/// partial report grows cell by cell. Once every scenario is covered the
/// output is **identical** to [`aggregate`] — the `scenarios` header field
/// counts covered scenarios, so a fully covered partial report equals the
/// final one byte for byte.
pub fn aggregate_covered(grid: &ScenarioGrid, outcomes: &[ScenarioOutcome]) -> CampaignReport {
    let replicates = (grid.replicates.max(1)) as usize;
    let mut slots: Vec<Option<&ScenarioOutcome>> = vec![None; grid.scenario_count()];
    for o in outcomes {
        if let Some(slot) = slots.get_mut(o.id) {
            *slot = Some(o);
        }
    }
    let mut cell_reports = Vec::new();
    let mut covered = 0usize;
    for cell in 0..grid.cell_count() {
        let cell_slots = &slots[cell * replicates..(cell + 1) * replicates];
        if cell_slots.iter().all(Option::is_some) {
            let owned: Vec<ScenarioOutcome> = cell_slots
                .iter()
                .map(|o| (*o.as_ref().expect("checked")).clone())
                .collect();
            cell_reports.push(aggregate_cell(grid.cell_key(cell), &owned));
            covered += replicates;
        }
    }
    let ratios = overhead_ratios(&cell_reports);
    CampaignReport {
        master_seed: grid.master_seed,
        cells: grid.cell_count(),
        scenarios: covered,
        replicates: grid.replicates,
        cell_reports,
        ratios,
    }
}

/// Serialize a campaign report as JSON lines: one `campaign` header line,
/// one `cell` line per cell (cell order), one `ratio` line per matched
/// pair. Deterministic byte-for-byte for a given grid + master seed.
pub fn write_jsonl<W: Write>(report: &CampaignReport, out: &mut W) -> io::Result<()> {
    let header = serde_json::Value::Map(vec![
        ("kind".into(), serde_json::Value::Str("campaign".into())),
        (
            "master_seed".into(),
            serde_json::Value::U64(report.master_seed),
        ),
        ("cells".into(), serde_json::Value::U64(report.cells as u64)),
        (
            "scenarios".into(),
            serde_json::Value::U64(report.scenarios as u64),
        ),
        (
            "replicates".into(),
            serde_json::Value::U64(report.replicates as u64),
        ),
    ]);
    writeln!(
        out,
        "{}",
        serde_json::to_string(&header).expect("header to_string")
    )?;
    for cell in &report.cell_reports {
        writeln!(out, "{}", tagged_line("cell", cell))?;
    }
    for ratio in &report.ratios {
        writeln!(out, "{}", tagged_line("ratio", ratio))?;
    }
    Ok(())
}

/// Render the full report to a string (used by tests and the CLI).
pub fn to_jsonl_string(report: &CampaignReport) -> String {
    let mut buf = Vec::new();
    write_jsonl(report, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

/// One JSONL line: the record's fields prefixed with a `kind` tag.
fn tagged_line<T: serde::Serialize>(kind: &str, record: &T) -> String {
    let mut value = serde_json::to_value(record).expect("record to_value");
    if let serde_json::Value::Map(entries) = &mut value {
        entries.insert(0, ("kind".to_string(), serde_json::Value::Str(kind.into())));
    }
    serde_json::to_string(&value).expect("record to_string")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::derive_seed;
    use qnet_core::classical::KnowledgeModel;
    use qnet_core::workload::PairSelection;

    fn key(cell: usize, mode: PolicyId, d: f64) -> CellKey {
        CellKey {
            cell,
            topology: "cycle-7".into(),
            nodes: 7,
            mode,
            distillation: d,
            knowledge: KnowledgeModel::Global,
            consumer_pairs: 5,
            requests: 6,
            discipline: PairSelection::UniformRandom,
            coherence_time_s: None,
            physics: None,
            traffic: None,
            fabric: None,
        }
    }

    fn outcome(id: usize, cell: usize, replicate: u32, overhead: Option<f64>) -> ScenarioOutcome {
        ScenarioOutcome {
            id,
            cell,
            replicate,
            seed: derive_seed(1, cell as u64, replicate as u64),
            swap_overhead: overhead,
            satisfied_requests: 6,
            arrived_requests: 6,
            unsatisfied_requests: 0,
            swaps_performed: 10,
            pairs_generated: 40,
            simulated_seconds: 100.0,
            count_update_messages: 5,
            latency_mean_s: None,
            latency_p50_s: None,
            latency_p95_s: None,
            fidelity_mean: None,
            fidelity_p50: None,
            fidelity_p95: None,
            expired_pairs: 0,
            fidelity_rejected: 0,
            missed_swaps: 0,
            stale_row_age_mean_s: None,
            stale_row_age_p95_s: None,
            sketch_quantiles: false,
        }
    }

    #[test]
    fn cell_aggregation_statistics() {
        let outcomes: Vec<ScenarioOutcome> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| outcome(i, 0, i as u32, Some(x)))
            .collect();
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &outcomes);
        assert_eq!(report.replicates, 8);
        assert_eq!(report.overhead_samples, 8);
        assert!((report.overhead_mean.unwrap() - 5.0).abs() < 1e-12);
        assert!((report.overhead_variance.unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(report.overhead_min, Some(2.0));
        assert_eq!(report.overhead_max, Some(9.0));
        assert_eq!(report.overhead_p50, Some(4.0));
        assert_eq!(report.overhead_p90, Some(9.0));
        assert!(report.overhead_ci95.unwrap() > 0.0);
        assert_eq!(report.swaps_total, 80);
        assert_eq!(report.satisfaction_mean, 1.0);
    }

    #[test]
    fn none_overheads_are_excluded_from_stats_but_not_totals() {
        let outcomes = vec![
            outcome(0, 0, 0, Some(3.0)),
            outcome(1, 0, 1, None),
            outcome(2, 0, 2, Some(5.0)),
        ];
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &outcomes);
        assert_eq!(report.replicates, 3);
        assert_eq!(report.overhead_samples, 2);
        assert!((report.overhead_mean.unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(report.swaps_total, 30);
    }

    #[test]
    fn empty_cell_report_is_well_formed() {
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &[]);
        assert_eq!(report.overhead_samples, 0);
        assert!(report.overhead_mean.is_none());
        assert!(report.overhead_p50.is_none());
        assert_eq!(report.satisfaction_mean, 1.0);
    }

    #[test]
    fn ratio_pairs_matching_cells_only() {
        let mut oblivious = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(6.0))],
        );
        let mut planned = aggregate_cell(
            key(1, PolicyId::PLANNED, 1.0),
            &[outcome(1, 1, 0, Some(2.0))],
        );
        let other_d = aggregate_cell(
            key(2, PolicyId::PLANNED, 2.0),
            &[outcome(2, 2, 0, Some(2.0))],
        );
        let rows = overhead_ratios(&[oblivious.clone(), planned.clone(), other_d]);
        assert_eq!(rows.len(), 1, "only the matching-D pair forms a ratio");
        assert!((rows[0].ratio - 3.0).abs() < 1e-12);
        assert_eq!(rows[0].numerator_mode, PolicyId::OBLIVIOUS);

        // No ratio when either side lacks samples.
        oblivious.overhead_mean = None;
        assert!(overhead_ratios(&[oblivious.clone(), planned.clone()]).is_empty());
        oblivious.overhead_mean = Some(6.0);
        planned.overhead_mean = None;
        assert!(overhead_ratios(&[oblivious, planned]).is_empty());
    }

    #[test]
    fn latency_columns_aggregate_through_running_stats() {
        use qnet_core::workload::TrafficModel;
        let mut open_key = key(0, PolicyId::OBLIVIOUS, 1.0);
        open_key.traffic = Some(TrafficModel::OpenLoopPoisson {
            rate_hz: 2.0,
            horizon_s: 3.0,
        });
        let outcomes: Vec<ScenarioOutcome> = [(2.0, 1.5, 4.0), (4.0, 2.5, 8.0)]
            .iter()
            .enumerate()
            .map(|(i, &(mean, p50, p95))| ScenarioOutcome {
                latency_mean_s: Some(mean),
                latency_p50_s: Some(p50),
                latency_p95_s: Some(p95),
                ..outcome(i, 0, i as u32, Some(3.0))
            })
            .collect();
        let report = aggregate_cell(open_key, &outcomes);
        assert!((report.latency_mean_s.unwrap() - 3.0).abs() < 1e-12);
        assert!((report.latency_p50_s.unwrap() - 2.0).abs() < 1e-12);
        assert!((report.latency_p95_s.unwrap() - 6.0).abs() < 1e-12);
        // CI95 comes from the shared RunningStats machinery.
        let mut stats = RunningStats::new();
        stats.record(2.0);
        stats.record(4.0);
        assert_eq!(report.latency_ci95_s, stats.ci95_half_width());

        // Serialized open-loop rows carry the latency columns and the
        // traffic descriptor…
        let line = tagged_line("cell", &report);
        assert!(line.contains("\"latency_p95_s\""));
        assert!(line.contains("\"OpenLoopPoisson\""));
        // …and closed-loop rows keep the legacy byte layout (no latency
        // keys, no traffic key).
        let closed = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(3.0))],
        );
        let closed_line = tagged_line("cell", &closed);
        assert!(!closed_line.contains("latency"));
        assert!(!closed_line.contains("traffic"));
        // Deserialization tolerates both layouts.
        let back: CellReport = serde_json::from_str(&line).unwrap();
        assert_eq!(back.latency_p50_s, report.latency_p50_s);
        let back_closed: CellReport = serde_json::from_str(&closed_line).unwrap();
        assert_eq!(back_closed.latency_p50_s, None);
    }

    #[test]
    fn fidelity_columns_aggregate_through_running_stats() {
        use qnet_core::physics::PhysicsModel;
        let mut physical_key = key(0, PolicyId::OBLIVIOUS, 1.0);
        physical_key.physics = Some(PhysicsModel::decoherent(0.5).with_fidelity_floor(0.7));
        let outcomes: Vec<ScenarioOutcome> = [(0.9, 0.88, 0.95, 10, 2), (0.7, 0.72, 0.85, 30, 4)]
            .iter()
            .enumerate()
            .map(
                |(i, &(mean, p50, p95, expired, rejected))| ScenarioOutcome {
                    fidelity_mean: Some(mean),
                    fidelity_p50: Some(p50),
                    fidelity_p95: Some(p95),
                    expired_pairs: expired,
                    fidelity_rejected: rejected,
                    ..outcome(i, 0, i as u32, Some(3.0))
                },
            )
            .collect();
        let report = aggregate_cell(physical_key, &outcomes);
        assert!((report.fidelity_mean.unwrap() - 0.8).abs() < 1e-12);
        assert!((report.fidelity_p50.unwrap() - 0.8).abs() < 1e-12);
        assert!((report.fidelity_p95.unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(report.expired_pairs_total, 40);
        assert_eq!(report.fidelity_rejected_total, 6);
        let mut stats = RunningStats::new();
        stats.record(0.9);
        stats.record(0.7);
        assert_eq!(report.fidelity_ci95, stats.ci95_half_width());

        // Serialized decoherent rows carry the fidelity columns and the
        // physics descriptor…
        let line = tagged_line("cell", &report);
        assert!(line.contains("\"fidelity_p95\""));
        assert!(line.contains("\"expired_pairs_total\""));
        assert!(line.contains("\"Decoherent\""));
        // …and ideal rows keep the legacy byte layout.
        let ideal = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(3.0))],
        );
        let ideal_line = tagged_line("cell", &ideal);
        assert!(!ideal_line.contains("fidelity"));
        assert!(!ideal_line.contains("expired"));
        assert!(!ideal_line.contains("physics"));
        // Deserialization tolerates both layouts.
        let back: CellReport = serde_json::from_str(&line).unwrap();
        assert_eq!(back.fidelity_p50, report.fidelity_p50);
        assert_eq!(back.expired_pairs_total, 40);
        let back_ideal: CellReport = serde_json::from_str(&ideal_line).unwrap();
        assert_eq!(back_ideal.fidelity_mean, None);
        assert_eq!(back_ideal.expired_pairs_total, 0);
    }

    #[test]
    fn ratios_do_not_pair_across_physics_models() {
        use qnet_core::physics::PhysicsModel;
        let oblivious = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(6.0))],
        );
        let mut decoherent_planned_key = key(1, PolicyId::PLANNED, 1.0);
        decoherent_planned_key.physics = Some(PhysicsModel::decoherent(1.0));
        let planned = aggregate_cell(decoherent_planned_key, &[outcome(1, 1, 0, Some(2.0))]);
        assert!(
            overhead_ratios(&[oblivious, planned]).is_empty(),
            "ideal numerator must not pair with a decoherent denominator"
        );
    }

    #[test]
    fn ratios_do_not_pair_across_traffic_models() {
        use qnet_core::workload::TrafficModel;
        let oblivious = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(6.0))],
        );
        let mut open_planned_key = key(1, PolicyId::PLANNED, 1.0);
        open_planned_key.traffic = Some(TrafficModel::OpenLoopPoisson {
            rate_hz: 1.0,
            horizon_s: 6.0,
        });
        let planned = aggregate_cell(open_planned_key, &[outcome(1, 1, 0, Some(2.0))]);
        assert!(
            overhead_ratios(&[oblivious, planned]).is_empty(),
            "closed-loop numerator must not pair with an open-loop denominator"
        );
    }

    #[test]
    fn aggregate_covered_reports_complete_cells_only() {
        use crate::runner::{run_campaign, RunnerConfig};
        use qnet_core::workload::WorkloadSpec;
        use qnet_topology::Topology;
        let grid = ScenarioGrid::new(13)
            .with_topologies(vec![Topology::Cycle { nodes: 5 }])
            .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
            .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
            .with_replicates(3)
            .with_horizon_s(400.0);
        let full = run_campaign(&grid, &RunnerConfig::serial());

        // Full coverage reproduces `aggregate` exactly, even from shuffled
        // input.
        let mut shuffled = full.outcomes.clone();
        shuffled.reverse();
        let covered = aggregate_covered(&grid, &shuffled);
        assert_eq!(
            to_jsonl_string(&covered),
            to_jsonl_string(&aggregate(&grid, &full))
        );

        // Cell 0 complete, cell 1 missing a replicate → one cell report,
        // covered count excludes the incomplete cell.
        let partial: Vec<ScenarioOutcome> = full
            .outcomes
            .iter()
            .filter(|o| o.id != 4)
            .cloned()
            .collect();
        let report = aggregate_covered(&grid, &partial);
        assert_eq!(report.cell_reports.len(), 1);
        assert_eq!(report.cell_reports[0].key.cell, 0);
        assert_eq!(report.scenarios, 3);
        assert_eq!(report.cells, grid.cell_count());
        assert!(report.ratios.is_empty(), "the hybrid cell is incomplete");

        // No coverage at all → an empty (but well-formed) report.
        let empty = aggregate_covered(&grid, &[]);
        assert!(empty.cell_reports.is_empty());
        assert_eq!(empty.scenarios, 0);
    }

    #[test]
    fn jsonl_round_trips_and_is_tagged() {
        let cell = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(3.0)), outcome(1, 0, 1, Some(5.0))],
        );
        let report = CampaignReport {
            master_seed: 9,
            cells: 1,
            scenarios: 2,
            replicates: 2,
            cell_reports: vec![cell],
            ratios: vec![],
        };
        let text = to_jsonl_string(&report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let header: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header["kind"], "campaign");
        assert_eq!(header["scenarios"], 2);
        let cell_line: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(cell_line["kind"], "cell");
        assert_eq!(cell_line["key"]["topology"], "cycle-7");
        assert_eq!(cell_line["overhead_samples"], 2);
    }
}
