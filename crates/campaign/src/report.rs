//! Per-cell streaming aggregation and report rendering.
//!
//! Aggregation consumes [`ScenarioOutcome`]s strictly in scenario-id order
//! (the runner guarantees that order regardless of thread count), folding
//! each cell's replicates into a [`CellReport`]: Welford mean/variance of
//! the swap overhead, exact percentiles over the replicate samples, a 95%
//! normal-approximation confidence interval, and satisfaction / swap /
//! message totals. A second pass pairs oblivious cells with their
//! planned-mode twins into [`OverheadRatioRow`]s — the oblivious-vs-planned
//! comparison behind the paper's Figures 4 and 5.
//!
//! Reports serialize to JSON lines: one self-describing object per line
//! (`"kind": "cell"` / `"ratio"` / `"campaign"`), so sweeps can be streamed,
//! `grep`ed and diffed. All numeric content derives from seeded simulation
//! only — byte-identical across runs and thread counts.

use crate::grid::{CellKey, ScenarioGrid};
use crate::runner::{CampaignResult, ScenarioOutcome};
use qnet_core::policy::{PolicyFamily, PolicyId};
use qnet_sim::stats::RunningStats;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// Aggregated statistics over one cell's replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// The cell's axis values.
    pub key: CellKey,
    /// Replicates executed.
    pub replicates: u32,
    /// Replicates whose swap-overhead denominator was non-zero.
    pub overhead_samples: u64,
    /// Mean swap overhead over the valid samples (`None` if none).
    pub overhead_mean: Option<f64>,
    /// Unbiased sample variance of the swap overhead.
    pub overhead_variance: Option<f64>,
    /// Half-width of the 95% confidence interval on the mean
    /// (normal approximation, `1.96·σ/√n`; `None` below 2 samples).
    pub overhead_ci95: Option<f64>,
    /// 10th/50th/90th percentile of the swap overhead samples.
    pub overhead_p10: Option<f64>,
    /// Median swap overhead.
    pub overhead_p50: Option<f64>,
    /// 90th percentile swap overhead.
    pub overhead_p90: Option<f64>,
    /// Minimum observed overhead.
    pub overhead_min: Option<f64>,
    /// Maximum observed overhead.
    pub overhead_max: Option<f64>,
    /// Mean satisfaction ratio over all replicates.
    pub satisfaction_mean: f64,
    /// Total swaps across replicates.
    pub swaps_total: u64,
    /// Total Bell pairs generated across replicates.
    pub pairs_generated_total: u64,
    /// Mean simulated seconds per replicate.
    pub simulated_seconds_mean: f64,
    /// Total classical count-update messages across replicates.
    pub count_update_messages_total: u64,
}

/// Oblivious-vs-planned comparison for one matched pair of cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRatioRow {
    /// Topology label shared by both cells.
    pub topology: String,
    /// Node count.
    pub nodes: usize,
    /// Distillation overhead `D`.
    pub distillation: f64,
    /// Requests per run.
    pub requests: usize,
    /// The numerator policy (an oblivious-family policy).
    pub numerator_mode: PolicyId,
    /// The denominator policy (a planned-family policy).
    pub denominator_mode: PolicyId,
    /// Mean overhead of the numerator cell.
    pub numerator_overhead: f64,
    /// Mean overhead of the denominator cell.
    pub denominator_overhead: f64,
    /// `numerator / denominator` (the Fig 4/5 comparison).
    pub ratio: f64,
}

/// A whole campaign: header metadata plus the per-cell reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Master seed the grid ran with.
    pub master_seed: u64,
    /// Cells in the grid.
    pub cells: usize,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Replicates per cell.
    pub replicates: u32,
    /// The per-cell aggregates, in cell order.
    pub cell_reports: Vec<CellReport>,
    /// Matched oblivious-vs-planned ratios.
    pub ratios: Vec<OverheadRatioRow>,
}

/// Exact percentile over a sorted sample set (nearest-rank method).
fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Fold one cell's outcomes (already in replicate order) into a report.
fn aggregate_cell(key: CellKey, outcomes: &[ScenarioOutcome]) -> CellReport {
    let mut overhead = RunningStats::new();
    let mut samples: Vec<f64> = Vec::with_capacity(outcomes.len());
    let mut satisfaction = 0.0f64;
    let mut swaps_total = 0u64;
    let mut pairs_total = 0u64;
    let mut sim_seconds = 0.0f64;
    let mut messages = 0u64;

    for o in outcomes {
        if let Some(x) = o.swap_overhead {
            overhead.record(x);
            samples.push(x);
        }
        satisfaction += o.satisfaction_ratio();
        swaps_total += o.swaps_performed;
        pairs_total += o.pairs_generated;
        sim_seconds += o.simulated_seconds;
        messages += o.count_update_messages;
    }
    samples.sort_by(f64::total_cmp);

    let n = overhead.count();
    let replicates = outcomes.len() as u32;
    let ci95 = overhead.ci95_half_width();

    CellReport {
        key,
        replicates,
        overhead_samples: n,
        overhead_mean: (n > 0).then(|| overhead.mean()),
        overhead_variance: (n > 1).then(|| overhead.variance()),
        overhead_ci95: ci95,
        overhead_p10: percentile_of_sorted(&samples, 0.10),
        overhead_p50: percentile_of_sorted(&samples, 0.50),
        overhead_p90: percentile_of_sorted(&samples, 0.90),
        overhead_min: overhead.min(),
        overhead_max: overhead.max(),
        satisfaction_mean: if replicates == 0 {
            1.0
        } else {
            satisfaction / replicates as f64
        },
        swaps_total,
        pairs_generated_total: pairs_total,
        simulated_seconds_mean: if replicates == 0 {
            0.0
        } else {
            sim_seconds / replicates as f64
        },
        count_update_messages_total: messages,
    }
}

/// True for the oblivious policy family (ratio numerators).
fn is_oblivious_family(mode: PolicyId) -> bool {
    mode.family() == PolicyFamily::Oblivious
}

/// True for the planned-path family (ratio denominators).
fn is_planned_family(mode: PolicyId) -> bool {
    mode.family() == PolicyFamily::Planned
}

/// Pair each oblivious-family cell with every planned-family cell that
/// matches it on all non-mode axes, and compute the overhead ratio.
pub fn overhead_ratios(cell_reports: &[CellReport]) -> Vec<OverheadRatioRow> {
    let mut rows = Vec::new();
    for num in cell_reports {
        if !is_oblivious_family(num.key.mode) {
            continue;
        }
        let Some(num_overhead) = num.overhead_mean else {
            continue;
        };
        for den in cell_reports {
            if !is_planned_family(den.key.mode) {
                continue;
            }
            let same_axes = num.key.topology == den.key.topology
                && num.key.distillation == den.key.distillation
                && num.key.knowledge == den.key.knowledge
                && num.key.consumer_pairs == den.key.consumer_pairs
                && num.key.requests == den.key.requests
                && num.key.discipline == den.key.discipline
                && num.key.coherence_time_s == den.key.coherence_time_s;
            if !same_axes {
                continue;
            }
            let Some(den_overhead) = den.overhead_mean else {
                continue;
            };
            if den_overhead <= 0.0 {
                continue;
            }
            rows.push(OverheadRatioRow {
                topology: num.key.topology.clone(),
                nodes: num.key.nodes,
                distillation: num.key.distillation,
                requests: num.key.requests,
                numerator_mode: num.key.mode,
                denominator_mode: den.key.mode,
                numerator_overhead: num_overhead,
                denominator_overhead: den_overhead,
                ratio: num_overhead / den_overhead,
            });
        }
    }
    rows
}

/// Aggregate a finished campaign into its deterministic report.
pub fn aggregate(grid: &ScenarioGrid, result: &CampaignResult) -> CampaignReport {
    let replicates = grid.replicates as usize;
    let mut cell_reports = Vec::with_capacity(grid.cell_count());
    for cell in 0..grid.cell_count() {
        let start = cell * replicates;
        let end = start + replicates;
        let outcomes = &result.outcomes[start..end];
        debug_assert!(outcomes.iter().all(|o| o.cell == cell));
        cell_reports.push(aggregate_cell(grid.cell_key(cell), outcomes));
    }
    let ratios = overhead_ratios(&cell_reports);
    CampaignReport {
        master_seed: grid.master_seed,
        cells: grid.cell_count(),
        scenarios: grid.scenario_count(),
        replicates: grid.replicates,
        cell_reports,
        ratios,
    }
}

/// Serialize a campaign report as JSON lines: one `campaign` header line,
/// one `cell` line per cell (cell order), one `ratio` line per matched
/// pair. Deterministic byte-for-byte for a given grid + master seed.
pub fn write_jsonl<W: Write>(report: &CampaignReport, out: &mut W) -> io::Result<()> {
    let header = serde_json::Value::Map(vec![
        ("kind".into(), serde_json::Value::Str("campaign".into())),
        (
            "master_seed".into(),
            serde_json::Value::U64(report.master_seed),
        ),
        ("cells".into(), serde_json::Value::U64(report.cells as u64)),
        (
            "scenarios".into(),
            serde_json::Value::U64(report.scenarios as u64),
        ),
        (
            "replicates".into(),
            serde_json::Value::U64(report.replicates as u64),
        ),
    ]);
    writeln!(
        out,
        "{}",
        serde_json::to_string(&header).expect("header to_string")
    )?;
    for cell in &report.cell_reports {
        writeln!(out, "{}", tagged_line("cell", cell))?;
    }
    for ratio in &report.ratios {
        writeln!(out, "{}", tagged_line("ratio", ratio))?;
    }
    Ok(())
}

/// Render the full report to a string (used by tests and the CLI).
pub fn to_jsonl_string(report: &CampaignReport) -> String {
    let mut buf = Vec::new();
    write_jsonl(report, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("JSON output is UTF-8")
}

/// One JSONL line: the record's fields prefixed with a `kind` tag.
fn tagged_line<T: serde::Serialize>(kind: &str, record: &T) -> String {
    let mut value = serde_json::to_value(record).expect("record to_value");
    if let serde_json::Value::Map(entries) = &mut value {
        entries.insert(0, ("kind".to_string(), serde_json::Value::Str(kind.into())));
    }
    serde_json::to_string(&value).expect("record to_string")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::derive_seed;
    use qnet_core::classical::KnowledgeModel;
    use qnet_core::workload::RequestDiscipline;

    fn key(cell: usize, mode: PolicyId, d: f64) -> CellKey {
        CellKey {
            cell,
            topology: "cycle-7".into(),
            nodes: 7,
            mode,
            distillation: d,
            knowledge: KnowledgeModel::Global,
            consumer_pairs: 5,
            requests: 6,
            discipline: RequestDiscipline::UniformRandom,
            coherence_time_s: None,
        }
    }

    fn outcome(id: usize, cell: usize, replicate: u32, overhead: Option<f64>) -> ScenarioOutcome {
        ScenarioOutcome {
            id,
            cell,
            replicate,
            seed: derive_seed(1, cell as u64, replicate as u64),
            swap_overhead: overhead,
            satisfied_requests: 6,
            unsatisfied_requests: 0,
            swaps_performed: 10,
            pairs_generated: 40,
            simulated_seconds: 100.0,
            count_update_messages: 5,
        }
    }

    #[test]
    fn cell_aggregation_statistics() {
        let outcomes: Vec<ScenarioOutcome> = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| outcome(i, 0, i as u32, Some(x)))
            .collect();
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &outcomes);
        assert_eq!(report.replicates, 8);
        assert_eq!(report.overhead_samples, 8);
        assert!((report.overhead_mean.unwrap() - 5.0).abs() < 1e-12);
        assert!((report.overhead_variance.unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(report.overhead_min, Some(2.0));
        assert_eq!(report.overhead_max, Some(9.0));
        assert_eq!(report.overhead_p50, Some(4.0));
        assert_eq!(report.overhead_p90, Some(9.0));
        assert!(report.overhead_ci95.unwrap() > 0.0);
        assert_eq!(report.swaps_total, 80);
        assert_eq!(report.satisfaction_mean, 1.0);
    }

    #[test]
    fn none_overheads_are_excluded_from_stats_but_not_totals() {
        let outcomes = vec![
            outcome(0, 0, 0, Some(3.0)),
            outcome(1, 0, 1, None),
            outcome(2, 0, 2, Some(5.0)),
        ];
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &outcomes);
        assert_eq!(report.replicates, 3);
        assert_eq!(report.overhead_samples, 2);
        assert!((report.overhead_mean.unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(report.swaps_total, 30);
    }

    #[test]
    fn empty_cell_report_is_well_formed() {
        let report = aggregate_cell(key(0, PolicyId::OBLIVIOUS, 1.0), &[]);
        assert_eq!(report.overhead_samples, 0);
        assert!(report.overhead_mean.is_none());
        assert!(report.overhead_p50.is_none());
        assert_eq!(report.satisfaction_mean, 1.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.25), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.5), Some(2.0));
        assert_eq!(percentile_of_sorted(&xs, 1.0), Some(4.0));
        assert_eq!(percentile_of_sorted(&[], 0.5), None);
    }

    #[test]
    fn ratio_pairs_matching_cells_only() {
        let mut oblivious = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(6.0))],
        );
        let mut planned = aggregate_cell(
            key(1, PolicyId::PLANNED, 1.0),
            &[outcome(1, 1, 0, Some(2.0))],
        );
        let other_d = aggregate_cell(
            key(2, PolicyId::PLANNED, 2.0),
            &[outcome(2, 2, 0, Some(2.0))],
        );
        let rows = overhead_ratios(&[oblivious.clone(), planned.clone(), other_d]);
        assert_eq!(rows.len(), 1, "only the matching-D pair forms a ratio");
        assert!((rows[0].ratio - 3.0).abs() < 1e-12);
        assert_eq!(rows[0].numerator_mode, PolicyId::OBLIVIOUS);

        // No ratio when either side lacks samples.
        oblivious.overhead_mean = None;
        assert!(overhead_ratios(&[oblivious.clone(), planned.clone()]).is_empty());
        oblivious.overhead_mean = Some(6.0);
        planned.overhead_mean = None;
        assert!(overhead_ratios(&[oblivious, planned]).is_empty());
    }

    #[test]
    fn jsonl_round_trips_and_is_tagged() {
        let cell = aggregate_cell(
            key(0, PolicyId::OBLIVIOUS, 1.0),
            &[outcome(0, 0, 0, Some(3.0)), outcome(1, 0, 1, Some(5.0))],
        );
        let report = CampaignReport {
            master_seed: 9,
            cells: 1,
            scenarios: 2,
            replicates: 2,
            cell_reports: vec![cell],
            ratios: vec![],
        };
        let text = to_jsonl_string(&report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let header: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(header["kind"], "campaign");
        assert_eq!(header["scenarios"], 2);
        let cell_line: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(cell_line["kind"], "cell");
        assert_eq!(cell_line["key"]["topology"], "cycle-7");
        assert_eq!(cell_line["overhead_samples"], 2);
    }
}
