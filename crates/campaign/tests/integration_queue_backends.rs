//! Differential determinism test over the event-queue backends.
//!
//! The simulation promises byte-identical reports regardless of which
//! `EventQueue` backend runs underneath (the timing wheel by default, the
//! legacy `BinaryHeap` via `QNET_EVENT_QUEUE=heap`). This spawns the real
//! `campaign` binary over the **default 108-scenario paper grid** once per
//! backend and compares every produced byte: the aggregate report and the
//! per-scenario outcome cache. It also pins the default grid's fingerprint —
//! the cache file name is part of the on-disk contract, and an accidental
//! grid change would silently orphan every existing cache.

use std::fs;
use std::path::Path;
use std::process::Command;

fn campaign_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

/// The default paper grid's fingerprint (`ScenarioGrid::fingerprint` over
/// every axis value, master seed, and replicate count).
const DEFAULT_GRID_FINGERPRINT: &str = "3d0ceedd6e2ff513";

fn run_default_grid(dir: &Path, backend: Option<&str>) -> (Vec<u8>, Vec<u8>) {
    let out = dir.join("report.jsonl");
    let cache = dir.join("cache");
    let mut cmd = Command::new(campaign_bin());
    cmd.arg("--out").arg(&out).arg("--cache-dir").arg(&cache);
    match backend {
        Some(b) => cmd.env("QNET_EVENT_QUEUE", b),
        None => cmd.env_remove("QNET_EVENT_QUEUE"),
    };
    let status = cmd.status().expect("spawn campaign binary");
    assert!(status.success(), "campaign run failed ({backend:?})");
    let outcomes = cache.join(format!("outcomes-{DEFAULT_GRID_FINGERPRINT}.jsonl"));
    assert!(
        outcomes.is_file(),
        "default grid fingerprint drifted: expected {}, cache dir holds {:?}",
        outcomes.display(),
        fs::read_dir(&cache)
            .map(|d| d
                .filter_map(|e| e.ok().map(|e| e.file_name()))
                .collect::<Vec<_>>())
            .unwrap_or_default()
    );
    (
        fs::read(&out).expect("read aggregate report"),
        fs::read(&outcomes).expect("read outcome cache"),
    )
}

#[test]
fn default_grid_is_byte_identical_across_queue_backends() {
    let base = std::env::temp_dir().join(format!("qnet-queue-backend-diff-{}", std::process::id()));
    let wheel_dir = base.join("wheel");
    let heap_dir = base.join("heap");
    fs::create_dir_all(&wheel_dir).unwrap();
    fs::create_dir_all(&heap_dir).unwrap();

    let (wheel_report, wheel_outcomes) = run_default_grid(&wheel_dir, Some("wheel"));
    let (heap_report, heap_outcomes) = run_default_grid(&heap_dir, Some("heap"));
    // And the backend default (no env var) must match the explicit wheel.
    let default_dir = base.join("default");
    fs::create_dir_all(&default_dir).unwrap();
    let (default_report, default_outcomes) = run_default_grid(&default_dir, None);

    assert!(
        wheel_report == heap_report,
        "aggregate report differs between wheel and heap backends"
    );
    assert!(
        wheel_outcomes == heap_outcomes,
        "outcome cache differs between wheel and heap backends"
    );
    assert!(wheel_report == default_report);
    assert!(wheel_outcomes == default_outcomes);
    // 108 outcome lines (the full default grid), 31 aggregate lines.
    assert_eq!(wheel_outcomes.iter().filter(|&&b| b == b'\n').count(), 108);
    assert_eq!(wheel_report.iter().filter(|&&b| b == b'\n').count(), 31);

    fs::remove_dir_all(&base).ok();
}
