//! End-to-end orchestrator tests over the real `campaign` binary.
//!
//! These spawn the compiled binary (via `CARGO_BIN_EXE_campaign`) exactly
//! as a user would, and pin the headline crash-recovery contract: a run
//! that loses a worker mid-shard — whether retried in-run or resumed after
//! the whole orchestrator failed — produces a merged report **byte-identical**
//! to an uninterrupted single-process run.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn campaign_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

/// A tiny grid that still exercises multi-shard partitions: 2 topologies ×
/// 2 modes × 2 replicates = 8 scenarios across 4 cells, each scenario a
/// few milliseconds of simulation.
const GRID_FLAGS: &[&str] = &[
    "--topologies",
    "cycle:5,path:4",
    "--modes",
    "oblivious,planned",
    "--dist",
    "1",
    "--pairs",
    "3",
    "--requests",
    "4",
    "--replicates",
    "2",
    "--seed",
    "9",
    "--horizon",
    "300",
];

fn run(args: &[&str]) -> Output {
    Command::new(campaign_bin())
        .args(args)
        .output()
        .expect("spawn campaign binary")
}

fn run_ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "campaign {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qnet-orch-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn golden_report(dir: &Path) -> String {
    let golden = dir.join("golden.jsonl");
    let mut args = vec!["--threads", "1", "--out", golden.to_str().unwrap()];
    args.extend_from_slice(GRID_FLAGS);
    run_ok(&args);
    fs::read_to_string(&golden).unwrap()
}

#[test]
fn orchestrated_run_matches_single_process_byte_for_byte() {
    let dir = temp_dir("clean");
    let golden = golden_report(&dir);

    let run_dir = dir.join("run");
    let mut args = vec![
        "orchestrate",
        "--workers",
        "3",
        "--run-dir",
        run_dir.to_str().unwrap(),
        "--quiet",
    ];
    args.extend_from_slice(GRID_FLAGS);
    run_ok(&args);

    let merged = fs::read_to_string(run_dir.join("merged.jsonl")).unwrap();
    assert_eq!(merged, golden, "orchestrated merge must be byte-identical");
    // At full coverage the live partial report equals the final one.
    let partial = fs::read_to_string(run_dir.join("partial.jsonl")).unwrap();
    assert_eq!(partial, golden, "full-coverage partial equals the report");

    // `campaign merge` accepts the run directory directly (satellite: a
    // directory argument stands for the sealed shard files inside it).
    let via_merge = dir.join("via-merge.jsonl");
    run_ok(&[
        "merge",
        run_dir.to_str().unwrap(),
        "--out",
        via_merge.to_str().unwrap(),
    ]);
    assert_eq!(fs::read_to_string(&via_merge).unwrap(), golden);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_is_retried_in_run_and_report_is_identical() {
    let dir = temp_dir("retry");
    let golden = golden_report(&dir);

    // Shard 1's first attempt dies (exit 17) after one simulated scenario;
    // with attempts left, the supervisor respawns it against the warm
    // cache and the run completes on its own.
    let run_dir = dir.join("run");
    let mut args = vec![
        "orchestrate",
        "--workers",
        "3",
        "--run-dir",
        run_dir.to_str().unwrap(),
        "--inject-abort",
        "1:1",
        "--max-attempts",
        "3",
        "--quiet",
    ];
    args.extend_from_slice(GRID_FLAGS);
    run_ok(&args);

    let merged = fs::read_to_string(run_dir.join("merged.jsonl")).unwrap();
    assert_eq!(merged, golden, "in-run retry must not change the report");

    let events = fs::read_to_string(run_dir.join("events.jsonl")).unwrap();
    assert!(events.contains("\"event\":\"worker-lost\""), "{events}");
    // The dead worker's finished scenario survived in the cache, so the
    // retry replays it instead of recomputing.
    assert!(events.contains("\"source\":\"cache-hit\""), "{events}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn killed_run_resumes_byte_identical() {
    let dir = temp_dir("resume");
    let golden = golden_report(&dir);

    // With --max-attempts 1 the injected death exhausts shard 1's budget
    // and the whole orchestrator run fails, leaving the directory behind.
    let run_dir = dir.join("run");
    let mut args = vec![
        "orchestrate",
        "--workers",
        "3",
        "--run-dir",
        run_dir.to_str().unwrap(),
        "--inject-abort",
        "1:1",
        "--max-attempts",
        "1",
        "--quiet",
    ];
    args.extend_from_slice(GRID_FLAGS);
    let out = run(&args);
    assert!(
        !out.status.success(),
        "exhausted attempts must fail the run"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume"),
        "failure points at --resume: {stderr}"
    );
    assert!(
        !run_dir.join("merged.jsonl").exists(),
        "a failed run must not write merged.jsonl"
    );

    // Resume takes everything from the run directory: sealed shards are
    // kept, the dead shard replays its cached scenario and recomputes the
    // rest, and the merged report is byte-identical to the golden run.
    run_ok(&[
        "orchestrate",
        "--resume",
        run_dir.to_str().unwrap(),
        "--quiet",
    ]);
    let merged = fs::read_to_string(run_dir.join("merged.jsonl")).unwrap();
    assert_eq!(merged, golden, "resume must be byte-identical");

    // The event log carries both phases (append-continued seq) and never
    // any wall-clock field.
    let events = fs::read_to_string(run_dir.join("events.jsonl")).unwrap();
    assert!(events.contains("\"event\":\"run-failed\""), "{events}");
    assert!(events.contains("\"event\":\"run-resumed\""), "{events}");
    assert!(events.contains("\"event\":\"run-complete\""), "{events}");
    assert!(
        !events.contains("\"time"),
        "events are wall-clock-free: {events}"
    );

    // Fresh orchestrate refuses to clobber the finished run directory.
    let mut again = vec![
        "orchestrate",
        "--workers",
        "3",
        "--run-dir",
        run_dir.to_str().unwrap(),
        "--quiet",
    ];
    again.extend_from_slice(GRID_FLAGS);
    let out = run(&again);
    assert!(!out.status.success(), "existing run dir must be refused");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn merge_directory_without_full_coverage_fails_clearly() {
    let dir = temp_dir("coverage");

    // Produce two of three shards directly (no orchestrator involved).
    for shard in ["0/3", "2/3"] {
        let out_file = dir.join(format!("shard-{}.jsonl", shard.chars().next().unwrap()));
        let mut args = vec!["--shard", shard, "--out", out_file.to_str().unwrap()];
        args.extend_from_slice(GRID_FLAGS);
        run_ok(&args);
    }

    let out = run(&["merge", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "incomplete coverage must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing") || stderr.contains("incomplete") || stderr.contains("partition"),
        "error must say what is missing: {stderr}"
    );

    // An empty directory names the problem rather than merging nothing.
    let empty = dir.join("empty");
    fs::create_dir_all(&empty).unwrap();
    let out = run(&["merge", empty.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no shard-"), "{stderr}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn worker_progress_stream_is_sequenced_and_wall_clock_free() {
    let dir = temp_dir("progress");
    let progress = dir.join("progress.jsonl");
    let out_file = dir.join("shard.jsonl");
    let mut args = vec![
        "--shard",
        "0/2",
        "--progress",
        progress.to_str().unwrap(),
        "--out",
        out_file.to_str().unwrap(),
    ];
    args.extend_from_slice(GRID_FLAGS);
    run_ok(&args);

    let text = fs::read_to_string(&progress).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines
        .first()
        .unwrap()
        .contains("\"event\":\"shard-claimed\""));
    assert!(lines.last().unwrap().contains("\"event\":\"shard-sealed\""));
    // Dense 0-based seq, no timestamps anywhere.
    for (pos, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"seq\":{pos}")),
            "line {pos}: {line}"
        );
    }
    assert!(!text.contains("\"time"), "{text}");

    let _ = fs::remove_dir_all(&dir);
}
