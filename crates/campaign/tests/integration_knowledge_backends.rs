//! Differential determinism tests over the knowledge backends.
//!
//! Global knowledge runs through the stale control plane by default (every
//! row refreshed synchronously, ages pinned at zero); the legacy truth
//! backend survives behind `QNET_KNOWLEDGE=truth`. The two must be
//! indistinguishable at the byte level: this spawns the real `campaign`
//! binary over the **default 108-scenario paper grid** once per backend and
//! compares every produced byte — the aggregate report and the per-scenario
//! outcome cache. It also re-pins the default grid's fingerprint (the cache
//! file name is part of the on-disk contract; adding the knowledge axis
//! must not have moved it).
//!
//! The second test is the stale-knowledge determinism smoke: a genuinely
//! gossiping grid (nonzero refresh period, so rows age and swaps can miss)
//! must be byte-identical cold, warm from its own outcome cache, and
//! recombined from a 2-way shard split.

use std::fs;
use std::path::Path;
use std::process::Command;

fn campaign_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

/// The default paper grid's fingerprint (`ScenarioGrid::fingerprint` over
/// every axis value, master seed, and replicate count).
const DEFAULT_GRID_FINGERPRINT: &str = "3d0ceedd6e2ff513";

fn run_default_grid(dir: &Path, backend: Option<&str>) -> (Vec<u8>, Vec<u8>) {
    let out = dir.join("report.jsonl");
    let cache = dir.join("cache");
    let mut cmd = Command::new(campaign_bin());
    cmd.arg("--out").arg(&out).arg("--cache-dir").arg(&cache);
    match backend {
        Some(b) => cmd.env("QNET_KNOWLEDGE", b),
        None => cmd.env_remove("QNET_KNOWLEDGE"),
    };
    let status = cmd.status().expect("spawn campaign binary");
    assert!(status.success(), "campaign run failed ({backend:?})");
    let outcomes = cache.join(format!("outcomes-{DEFAULT_GRID_FINGERPRINT}.jsonl"));
    assert!(
        outcomes.is_file(),
        "default grid fingerprint drifted: expected {}, cache dir holds {:?}",
        outcomes.display(),
        fs::read_dir(&cache)
            .map(|d| d
                .filter_map(|e| e.ok().map(|e| e.file_name()))
                .collect::<Vec<_>>())
            .unwrap_or_default()
    );
    (
        fs::read(&out).expect("read aggregate report"),
        fs::read(&outcomes).expect("read outcome cache"),
    )
}

#[test]
fn default_grid_is_byte_identical_across_knowledge_backends() {
    let base = std::env::temp_dir().join(format!(
        "qnet-knowledge-backend-diff-{}",
        std::process::id()
    ));
    let truth_dir = base.join("truth");
    let stale_dir = base.join("stale");
    fs::create_dir_all(&truth_dir).unwrap();
    fs::create_dir_all(&stale_dir).unwrap();

    // Default (stale plane with zero-age global rows) vs the legacy escape.
    let (stale_report, stale_outcomes) = run_default_grid(&stale_dir, None);
    let (truth_report, truth_outcomes) = run_default_grid(&truth_dir, Some("truth"));

    assert!(
        stale_report == truth_report,
        "aggregate report differs between stale and truth knowledge backends"
    );
    assert!(
        stale_outcomes == truth_outcomes,
        "outcome cache differs between stale and truth knowledge backends"
    );
    // 108 outcome lines (the full default grid), 31 aggregate lines — and no
    // staleness columns anywhere: global rows never go stale.
    assert_eq!(stale_outcomes.iter().filter(|&&b| b == b'\n').count(), 108);
    assert_eq!(stale_report.iter().filter(|&&b| b == b'\n').count(), 31);
    let cache_text = String::from_utf8(stale_outcomes).unwrap();
    assert!(
        !cache_text.contains("stale_row_age") && !cache_text.contains("missed_swaps"),
        "global-knowledge rows must not grow staleness columns"
    );

    fs::remove_dir_all(&base).ok();
}

/// The gossip flags for the staleness smoke: small enough to run in
/// seconds, stale enough (0.5 s refresh over a 7-cycle) that rows age
/// and the staleness columns actually appear.
const GOSSIP_FLAGS: [&str; 12] = [
    "--topologies",
    "cycle:7",
    "--modes",
    "oblivious,hybrid",
    "--knowledge",
    "gossip:2:0.5",
    "--replicates",
    "2",
    "--requests",
    "6",
    "--horizon",
    "1000",
];

fn run_gossip(dir: &Path, cache: Option<&Path>, shard: Option<&str>) -> Vec<u8> {
    let out = dir.join(match shard {
        Some(s) => format!("report-{}.jsonl", s.replace('/', "-")),
        None => "report.jsonl".to_string(),
    });
    let mut cmd = Command::new(campaign_bin());
    cmd.args(GOSSIP_FLAGS).arg("--out").arg(&out);
    if let Some(cache) = cache {
        cmd.arg("--cache-dir").arg(cache);
    }
    if let Some(shard) = shard {
        cmd.arg("--shard").arg(shard);
    }
    let status = cmd.status().expect("spawn campaign binary");
    assert!(status.success(), "gossip campaign run failed");
    fs::read(&out).expect("read gossip report")
}

#[test]
fn gossip_grid_is_deterministic_cold_warm_and_sharded() {
    let base = std::env::temp_dir().join(format!("qnet-knowledge-gossip-{}", std::process::id()));
    fs::create_dir_all(&base).unwrap();
    let cache = base.join("cache");

    // Cold run fills the outcome cache; the warm rerun replays it.
    let cold = run_gossip(&base, Some(&cache), None);
    let warm = run_gossip(&base, Some(&cache), None);
    assert!(cold == warm, "warm cache replay changed the gossip report");

    // A 2-way shard split (no cache, so the shard path genuinely runs)
    // must merge back to the same bytes.
    let shard0 = base.join("shard-0");
    let shard1 = base.join("shard-1");
    fs::create_dir_all(&shard0).unwrap();
    fs::create_dir_all(&shard1).unwrap();
    run_gossip(&shard0, None, Some("0/2"));
    run_gossip(&shard1, None, Some("1/2"));
    let merged = base.join("merged.jsonl");
    let status = Command::new(campaign_bin())
        .arg("merge")
        .arg(shard0.join("report-0-2.jsonl"))
        .arg(shard1.join("report-1-2.jsonl"))
        .arg("--out")
        .arg(&merged)
        .status()
        .expect("spawn campaign merge");
    assert!(status.success(), "campaign merge failed");
    let merged_bytes = fs::read(&merged).expect("read merged report");
    assert!(
        cold == merged_bytes,
        "2-way shard merge differs from the single-process gossip report"
    );

    // The stale plane really bit: staleness columns must be present.
    let text = String::from_utf8(cold).unwrap();
    assert!(
        text.contains("stale_row_age_mean_s"),
        "gossip report never aged a row — the smoke is not exercising staleness"
    );

    fs::remove_dir_all(&base).ok();
}
