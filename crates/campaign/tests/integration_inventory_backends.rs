//! Differential determinism test over the inventory backends.
//!
//! The simulation promises byte-identical reports regardless of which
//! inventory pool store runs underneath (the flat edge-indexed store by
//! default, the legacy `BTreeMap` via `QNET_INVENTORY=btree`). This spawns
//! the real `campaign` binary over the **default 108-scenario paper grid**
//! once per backend and compares every produced byte: the aggregate report
//! and the per-scenario outcome cache. It also re-pins the default grid's
//! fingerprint — the cache file name is part of the on-disk contract, and
//! an accidental grid change would silently orphan every existing cache.

use std::fs;
use std::path::Path;
use std::process::Command;

fn campaign_bin() -> &'static str {
    env!("CARGO_BIN_EXE_campaign")
}

/// The default paper grid's fingerprint (`ScenarioGrid::fingerprint` over
/// every axis value, master seed, and replicate count).
const DEFAULT_GRID_FINGERPRINT: &str = "3d0ceedd6e2ff513";

fn run_default_grid(dir: &Path, backend: Option<&str>) -> (Vec<u8>, Vec<u8>) {
    let out = dir.join("report.jsonl");
    let cache = dir.join("cache");
    let mut cmd = Command::new(campaign_bin());
    cmd.arg("--out").arg(&out).arg("--cache-dir").arg(&cache);
    match backend {
        Some(b) => cmd.env("QNET_INVENTORY", b),
        None => cmd.env_remove("QNET_INVENTORY"),
    };
    let status = cmd.status().expect("spawn campaign binary");
    assert!(status.success(), "campaign run failed ({backend:?})");
    let outcomes = cache.join(format!("outcomes-{DEFAULT_GRID_FINGERPRINT}.jsonl"));
    assert!(
        outcomes.is_file(),
        "default grid fingerprint drifted: expected {}, cache dir holds {:?}",
        outcomes.display(),
        fs::read_dir(&cache)
            .map(|d| d
                .filter_map(|e| e.ok().map(|e| e.file_name()))
                .collect::<Vec<_>>())
            .unwrap_or_default()
    );
    (
        fs::read(&out).expect("read aggregate report"),
        fs::read(&outcomes).expect("read outcome cache"),
    )
}

#[test]
fn default_grid_is_byte_identical_across_inventory_backends() {
    let base = std::env::temp_dir().join(format!(
        "qnet-inventory-backend-diff-{}",
        std::process::id()
    ));
    let flat_dir = base.join("flat");
    let btree_dir = base.join("btree");
    fs::create_dir_all(&flat_dir).unwrap();
    fs::create_dir_all(&btree_dir).unwrap();

    let (flat_report, flat_outcomes) = run_default_grid(&flat_dir, Some("flat"));
    let (btree_report, btree_outcomes) = run_default_grid(&btree_dir, Some("btree"));
    // And the backend default (no env var) must match the explicit flat.
    let default_dir = base.join("default");
    fs::create_dir_all(&default_dir).unwrap();
    let (default_report, default_outcomes) = run_default_grid(&default_dir, None);

    assert!(
        flat_report == btree_report,
        "aggregate report differs between flat and btree inventory backends"
    );
    assert!(
        flat_outcomes == btree_outcomes,
        "outcome cache differs between flat and btree inventory backends"
    );
    assert!(flat_report == default_report);
    assert!(flat_outcomes == default_outcomes);
    // 108 outcome lines (the full default grid), 31 aggregate lines.
    assert_eq!(flat_outcomes.iter().filter(|&&b| b == b'\n').count(), 108);
    assert_eq!(flat_report.iter().filter(|&&b| b == b'\n').count(), 31);

    fs::remove_dir_all(&base).ok();
}
