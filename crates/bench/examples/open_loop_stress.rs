//! Open-loop stress driver: run one lazily-streamed Poisson workload at a
//! chosen scale and print a one-line machine-readable summary. The CI
//! memory-smoke job wraps this in `/usr/bin/time -v` to assert that peak
//! RSS stays flat from 10⁵ to 10⁶ requests (the arrival stream and the
//! streaming metrics recorder are both fixed-memory, so RSS is dominated
//! by the topology, not the request count).
//!
//! ```text
//! cargo run --release -p qnet-bench --example open_loop_stress -- \
//!     --topology cycle:25 --requests 100000 [--seed 7] [--rate-hz 2000]
//! ```

use qnet_core::classical::KnowledgeModel;
use qnet_core::experiment::{Experiment, ExperimentConfig};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use qnet_core::NetworkConfig;
use qnet_topology::{FabricSpec, HardwarePreset, Topology};

fn parse_args() -> (String, u64, u64, f64, Option<f64>, Option<f64>) {
    let mut topology = "cycle:25".to_string();
    let mut requests = 100_000u64;
    let mut seed = 7u64;
    let mut rate_hz = 1_000.0f64;
    let mut gen_rate = None;
    let mut scan_rate = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--topology" => topology = value(),
            "--requests" => requests = value().parse().expect("--requests: integer"),
            "--seed" => seed = value().parse().expect("--seed: integer"),
            "--rate-hz" => rate_hz = value().parse().expect("--rate-hz: float"),
            "--gen-rate" => gen_rate = Some(value().parse().expect("--gen-rate: float")),
            "--scan-rate" => scan_rate = Some(value().parse().expect("--scan-rate: float")),
            other => panic!("unknown flag {other}"),
        }
    }
    (topology, requests, seed, rate_hz, gen_rate, scan_rate)
}

fn main() {
    let (topology, requests, seed, rate_hz, gen_rate, scan_rate) = parse_args();
    // The horizon realises ~`requests` Poisson arrivals at `rate_hz`.
    let horizon_s = requests as f64 / rate_hz;
    let (mut network, nodes) = match topology.as_str() {
        spec if spec.starts_with("cycle:") => {
            let nodes: usize = spec["cycle:".len()..].parse().expect("cycle:<nodes>");
            (NetworkConfig::new(Topology::Cycle { nodes }), nodes)
        }
        spec if spec.starts_with("scale-free:") => {
            let nodes: usize = spec["scale-free:".len()..]
                .parse()
                .expect("scale-free:<nodes>");
            (
                NetworkConfig::new(Topology::ScaleFree { nodes, attach: 2 })
                    .with_fabric(FabricSpec::new(HardwarePreset::MetroFiber)),
                nodes,
            )
        }
        other => panic!("unknown topology {other} (use cycle:<n> or scale-free:<n>)"),
    };
    if let Some(rate) = gen_rate {
        network = network.with_generation_rate(rate);
    }
    if let Some(rate) = scan_rate {
        network = network.with_swap_scan_rate(rate);
    }
    let config = ExperimentConfig {
        network,
        workload: WorkloadSpec::open_loop(
            nodes,
            35.min(nodes * (nodes - 1) / 2),
            rate_hz,
            horizon_s,
        ),
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed,
        max_sim_time_s: horizon_s * 2.0,
    };
    let start = std::time::Instant::now();
    let result = Experiment::new(config).run();
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "topology={topology} requests={requests} arrived={} satisfied={} \
         streamed={} swaps={} wall_s={elapsed:.3}",
        result.metrics.arrived_requests,
        result.satisfied_requests,
        result.metrics.is_streamed(),
        result.swaps_performed,
    );
}
