//! # qnet-bench — figure regeneration and benchmark harness
//!
//! One binary per experiment in DESIGN.md's per-experiment index regenerates
//! the corresponding table/figure of the paper; the Criterion benches under
//! `benches/` measure the engineering-level costs (balancer step, LP solve,
//! simulator throughput, quantum primitives).
//!
//! The sweep helpers here are shared between the binaries, the benches and
//! the integration tests: a [`SweepScale`] selects between the paper-scale
//! parameters (|N| = 25, 35 consumer pairs, several seeds) and a quick scale
//! suitable for CI or `--quick` runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qnet_core::classical::KnowledgeModel;
use qnet_core::config::DistillationSpec;
use qnet_core::experiment::{mean_overhead_over_seeds, ExperimentConfig};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use qnet_core::NetworkConfig;
use qnet_topology::Topology;
use serde::Serialize;

/// How big a sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScale {
    /// The paper's §5 scale: |N| = 25, 35 consumer pairs, multiple seeds.
    Paper,
    /// A reduced scale for smoke tests and Criterion benches.
    Quick,
}

impl SweepScale {
    /// Parse from command-line arguments (`--quick` selects the quick scale).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            SweepScale::Quick
        } else {
            SweepScale::Paper
        }
    }

    /// Seeds to average over.
    pub fn seeds(&self) -> Vec<u64> {
        match self {
            SweepScale::Paper => vec![11, 23, 37],
            SweepScale::Quick => vec![11],
        }
    }

    /// Number of consumption requests per run.
    pub fn requests(&self) -> usize {
        match self {
            SweepScale::Paper => 35,
            SweepScale::Quick => 12,
        }
    }

    /// Simulated-time horizon per run, in seconds.
    pub fn horizon_s(&self) -> f64 {
        match self {
            SweepScale::Paper => 40_000.0,
            SweepScale::Quick => 4_000.0,
        }
    }
}

/// One row of a figure: a topology/parameter point and its measured overhead.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Experiment identifier (e.g. "fig4").
    pub experiment: String,
    /// Topology label.
    pub topology: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Distillation overhead `D`.
    pub distillation: f64,
    /// Protocol mode.
    pub mode: String,
    /// Mean swap overhead over the seeds (`None` if no run produced a
    /// non-zero denominator).
    pub swap_overhead: Option<f64>,
    /// Fraction of requests satisfied across all seeds.
    pub satisfaction: f64,
}

impl FigureRow {
    /// Render as a CSV line (matching [`csv_header`]).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.4}",
            self.experiment,
            self.topology,
            self.nodes,
            self.distillation,
            self.mode,
            self.swap_overhead
                .map(|o| format!("{o:.4}"))
                .unwrap_or_default(),
            self.satisfaction
        )
    }
}

/// CSV header matching [`FigureRow::to_csv`].
pub fn csv_header() -> &'static str {
    "experiment,topology,nodes,distillation,mode,swap_overhead,satisfaction"
}

/// Build the §5 experiment configuration for a topology / distillation /
/// protocol point at the given scale.
pub fn section5_config(
    topology: Topology,
    distillation: f64,
    mode: PolicyId,
    scale: SweepScale,
) -> ExperimentConfig {
    ExperimentConfig {
        network: NetworkConfig::new(topology)
            .with_distillation(DistillationSpec::Uniform(distillation)),
        workload: WorkloadSpec::paper_default(topology.node_count())
            .with_requests(scale.requests()),
        mode,
        knowledge: KnowledgeModel::Global,
        seed: 1,
        max_sim_time_s: scale.horizon_s(),
    }
}

/// Run one figure point: average the swap overhead over the scale's seeds.
pub fn run_point(
    experiment: &str,
    topology: Topology,
    distillation: f64,
    mode: PolicyId,
    scale: SweepScale,
) -> FigureRow {
    let config = section5_config(topology, distillation, mode, scale);
    let (overhead, satisfaction) = mean_overhead_over_seeds(&config, &scale.seeds());
    FigureRow {
        experiment: experiment.to_string(),
        topology: topology.label(),
        nodes: topology.node_count(),
        distillation,
        mode: format!("{mode:?}"),
        swap_overhead: overhead,
        satisfaction,
    }
}

/// The topologies of the paper's Figures 4 and 5 ("three graphs"): the cycle,
/// the full wraparound grid, and the random-connected wraparound grid.
pub fn figure_topologies(nodes: usize) -> Vec<Topology> {
    let side = (nodes as f64).sqrt().round() as usize;
    vec![
        Topology::Cycle { nodes },
        Topology::TorusGrid { side },
        Topology::RandomConnectedGrid { side },
    ]
}

/// Figure 4's parameter table at a scale: the network size and the
/// distillation overheads swept. Shared by the serial `fig4` binary and
/// the campaign-engine regeneration so the two cannot diverge.
pub fn figure4_scale(scale: SweepScale) -> (usize, Vec<f64>) {
    match scale {
        SweepScale::Paper => (25, vec![1.0, 2.0, 3.0]),
        SweepScale::Quick => (9, vec![1.0, 2.0]),
    }
}

/// Figure 5's parameter table at a scale: the network sizes swept at
/// D = 1. Shared by the serial `fig5` binary and the campaign-engine
/// regeneration.
pub fn figure5_sizes(scale: SweepScale) -> Vec<usize> {
    match scale {
        SweepScale::Paper => vec![9, 16, 25, 36, 49],
        SweepScale::Quick => vec![9, 16],
    }
}

/// Figure 4 sweep: |N| = 25, varying D, per topology.
pub fn figure4_rows(scale: SweepScale) -> Vec<FigureRow> {
    let (nodes, ds) = figure4_scale(scale);
    let mut rows = Vec::new();
    for topology in figure_topologies(nodes) {
        for &d in &ds {
            rows.push(run_point("fig4", topology, d, PolicyId::OBLIVIOUS, scale));
        }
    }
    rows
}

/// Figure 5 sweep: D = 1, varying |N|, per topology.
pub fn figure5_rows(scale: SweepScale) -> Vec<FigureRow> {
    let mut rows = Vec::new();
    for nodes in figure5_sizes(scale) {
        for topology in figure_topologies(nodes) {
            rows.push(run_point("fig5", topology, 1.0, PolicyId::OBLIVIOUS, scale));
        }
    }
    rows
}

/// Print rows as an aligned table plus CSV, and return the CSV text.
pub fn print_rows(title: &str, rows: &[FigureRow]) -> String {
    println!("== {title} ==");
    println!(
        "{:<18} {:>5} {:>5} {:>26} {:>10} {:>12}",
        "topology", "N", "D", "mode", "overhead", "satisfied"
    );
    for r in rows {
        println!(
            "{:<18} {:>5} {:>5} {:>26} {:>10} {:>11.0}%",
            r.topology,
            r.nodes,
            r.distillation,
            r.mode,
            r.swap_overhead
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".to_string()),
            r.satisfaction * 100.0
        );
    }
    let mut csv = String::from(csv_header());
    csv.push('\n');
    for r in rows {
        csv.push_str(&r.to_csv());
        csv.push('\n');
    }
    println!("\n--- CSV ---\n{csv}");
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_parameters() {
        assert_eq!(SweepScale::Quick.seeds(), vec![11]);
        assert_eq!(SweepScale::Quick.requests(), 12);
        assert!(SweepScale::Paper.requests() >= 35);
    }

    #[test]
    fn figure_topologies_have_requested_size() {
        for t in figure_topologies(25) {
            assert_eq!(t.node_count(), 25, "{}", t.label());
        }
        for t in figure_topologies(9) {
            assert_eq!(t.node_count(), 9);
        }
    }

    #[test]
    fn csv_round_trip_shape() {
        let row = FigureRow {
            experiment: "fig4".into(),
            topology: "cycle-9".into(),
            nodes: 9,
            distillation: 2.0,
            mode: "Oblivious".into(),
            swap_overhead: Some(1.5),
            satisfaction: 1.0,
        };
        let line = row.to_csv();
        assert_eq!(line.split(',').count(), csv_header().split(',').count());
        assert!(line.contains("1.5000"));
        let empty = FigureRow {
            swap_overhead: None,
            ..row
        };
        assert_eq!(empty.to_csv().split(',').count(), 7);
    }

    #[test]
    fn run_point_produces_sane_overhead() {
        let row = run_point(
            "smoke",
            Topology::Cycle { nodes: 7 },
            1.0,
            PolicyId::OBLIVIOUS,
            SweepScale::Quick,
        );
        assert_eq!(row.nodes, 7);
        assert!(row.satisfaction > 0.5);
        if let Some(o) = row.swap_overhead {
            assert!(o >= 1.0);
        }
    }
}
