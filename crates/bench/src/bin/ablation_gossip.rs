//! Experiment E6: the §6 "classical overheads" relaxation — replacing global
//! buffer-count knowledge with a BitTorrent-like rotating-peer gossip and
//! measuring both the swap overhead and the classical message volume.
//!
//! Run with `cargo run -p qnet-bench --bin ablation_gossip --release`
//! (`--quick` shrinks the sweep).

use qnet_bench::{section5_config, SweepScale};
use qnet_core::classical::KnowledgeModel;
use qnet_core::experiment::Experiment;
use qnet_core::policy::PolicyId;
use qnet_topology::Topology;

fn main() {
    let scale = SweepScale::from_args();
    let nodes = match scale {
        SweepScale::Paper => 25,
        SweepScale::Quick => 9,
    };
    let topology = Topology::Cycle { nodes };
    println!("== E6: knowledge-model ablation (cycle-{nodes}, D = 1) ==");
    println!(
        "{:>22} {:>10} {:>12} {:>16} {:>16}",
        "knowledge", "overhead", "satisfied", "count msgs", "total msgs"
    );
    let mut models = vec![("global".to_string(), KnowledgeModel::Global)];
    for peers in [1usize, 2, 4, 8] {
        models.push((
            format!("gossip({peers}/scan)"),
            KnowledgeModel::Gossip {
                peers_per_refresh: peers,
                refresh_period_s: 0.0,
            },
        ));
    }
    for (label, knowledge) in models {
        let mut config = section5_config(topology, 1.0, PolicyId::OBLIVIOUS, scale);
        config.knowledge = knowledge;
        let result = Experiment::new(config).run();
        println!(
            "{:>22} {:>10} {:>11}/{:<3} {:>16} {:>16}",
            label,
            result
                .swap_overhead()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            result.satisfied_requests,
            result.satisfied_requests as u64 + result.unsatisfied_requests,
            result.metrics.classical.count_update_messages,
            result.metrics.classical.total_messages(),
        );
    }
    println!(
        "\nExpected shape: gossip trades a modest overhead increase (stale counts cause \
         some unnecessary swaps) for a large reduction in count-update message volume \
         relative to broadcasting every inventory change."
    );
}
