//! Regenerates **Figure 5** of the paper: swap overhead versus network size
//! |N| at D = 1, for the cycle, torus-grid and random-connected-grid
//! generation graphs.
//!
//! Run with `cargo run -p qnet-bench --bin fig5 --release`; pass `--quick`
//! for a smoke-test-sized sweep. Output goes to stdout and `target/fig5.csv`.

use qnet_bench::{figure5_rows, print_rows, SweepScale};

fn main() {
    let scale = SweepScale::from_args();
    let rows = figure5_rows(scale);
    let csv = print_rows(
        "Figure 5 — swap overhead vs network size |N| (D = 1, path-oblivious balancing)",
        &rows,
    );
    let out = std::path::Path::new("target").join("fig5.csv");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&out, csv).is_ok() {
        println!("wrote {}", out.display());
    }
    println!("\nExpected shape (paper): overhead grows slowly as |N| increases at D = 1.");
}
