//! Experiment E7: the §3.2 overhead extensions of the steady-state LP —
//! sweeping the distillation overhead `D`, the loss/survival fraction `L`
//! and the QEC thinning `R`, and reporting how much generation is needed to
//! sustain a fixed demand.
//!
//! Run with `cargo run -p qnet-bench --bin lp_overheads --release`.

use qnet_core::lp_model::{LpObjective, SteadyStateModel};
use qnet_core::rates::RateMatrices;
use qnet_quantum::distill::{overhead_factor, DistillationProtocol};
use qnet_quantum::qec::QecCode;
use qnet_topology::{builders, NodeId, NodePair};

fn model(survival: f64, distillation: f64, qec_overhead: f64) -> SteadyStateModel {
    let graph = builders::cycle(8);
    // High per-edge capacity so the LP stays feasible across the sweep.
    let capacity = RateMatrices::uniform_generation(&graph, 64.0).with_qec_thinning(qec_overhead);
    let mut demand = RateMatrices::zeros(8);
    demand.set_consumption(NodePair::new(NodeId(0), NodeId(4)), 0.5);
    demand.set_consumption(NodePair::new(NodeId(1), NodeId(3)), 0.5);
    SteadyStateModel::new(&capacity, &demand).with_overheads(survival, distillation)
}

fn main() {
    println!(
        "== E7: LP with decoherence / distillation / QEC overheads (cycle-8, fixed demand) =="
    );
    println!(
        "{:>6} {:>6} {:>6} {:>14} {:>14} {:>10}",
        "L", "D", "R", "total gen", "total swaps", "status"
    );
    for &survival in &[1.0, 0.8, 0.5] {
        for &distillation in &[1.0, 2.0, 3.0] {
            for &qec in &[1.0, 2.0] {
                let sol = model(survival, distillation, qec).solve(LpObjective::MinTotalGeneration);
                println!(
                    "{:>6.2} {:>6.1} {:>6.1} {:>14.3} {:>14.3} {:>10}",
                    survival,
                    distillation,
                    qec,
                    sol.total_generation(),
                    sol.total_swap_rate(),
                    format!("{:?}", sol.status),
                );
            }
        }
    }

    println!("\n== Physics-derived distillation overheads (BBPSSW, target fidelity 0.95) ==");
    println!("{:>14} {:>12}", "raw fidelity", "D (pairs)");
    for &f in &[0.99, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7] {
        let d = overhead_factor(DistillationProtocol::Bbpssw, f, 0.95);
        println!(
            "{:>14.2} {:>12}",
            f,
            d.map(|d| format!("{d:.2}")).unwrap_or_else(|| "∞".into())
        );
    }

    println!("\n== QEC thinning factors R (surface-code model, p = 1e-3) ==");
    println!("{:>10} {:>10} {:>16}", "distance", "R", "logical error");
    for &d in &[1u32, 3, 5, 7] {
        let code = QecCode::surface(d, 1e-3);
        println!(
            "{:>10} {:>10.0} {:>16.2e}",
            d,
            code.overhead_factor(),
            code.logical_error_rate()
        );
    }
}
