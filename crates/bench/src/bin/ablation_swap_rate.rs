//! Experiment E4: the paper's §5 claim that "varying [the swap-scan] rate did
//! not significantly alter the results". Sweeps the per-node swap-scan rate
//! while holding everything else at the §5 defaults and reports the swap
//! overhead.
//!
//! Run with `cargo run -p qnet-bench --bin ablation_swap_rate --release`
//! (`--quick` shrinks the network and request count).

use qnet_bench::{section5_config, SweepScale};
use qnet_core::experiment::mean_overhead_over_seeds;
use qnet_core::policy::PolicyId;
use qnet_topology::Topology;

fn main() {
    let scale = SweepScale::from_args();
    let nodes = match scale {
        SweepScale::Paper => 25,
        SweepScale::Quick => 9,
    };
    let topology = Topology::Cycle { nodes };
    println!("== E4: swap-scan-rate ablation (cycle-{nodes}, D = 1) ==");
    println!(
        "{:>16} {:>12} {:>12}",
        "scan rate (/s)", "overhead", "satisfied"
    );
    for &rate in &[1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut config = section5_config(topology, 1.0, PolicyId::OBLIVIOUS, scale);
        config.network = config.network.with_swap_scan_rate(rate);
        let (overhead, satisfaction) = mean_overhead_over_seeds(&config, &scale.seeds());
        println!(
            "{:>16.1} {:>12} {:>11.0}%",
            rate,
            overhead
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            satisfaction * 100.0
        );
    }
    println!(
        "\nExpected shape (paper): the overhead stays roughly flat across scan rates; \
         only time-to-satisfaction (not shown by this metric) changes."
    );
}
