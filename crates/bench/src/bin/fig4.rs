//! Regenerates **Figure 4** of the paper: swap overhead versus the
//! distillation overhead `D` at |N| = 25, for the cycle, torus-grid and
//! random-connected-grid generation graphs.
//!
//! Run the full paper-scale sweep with
//! `cargo run -p qnet-bench --bin fig4 --release`; pass `--quick` for a
//! smoke-test-sized sweep. The table and a CSV block are printed to stdout
//! and the CSV is also written to `target/fig4.csv`.

use qnet_bench::{figure4_rows, print_rows, SweepScale};

fn main() {
    let scale = SweepScale::from_args();
    let rows = figure4_rows(scale);
    let csv = print_rows(
        "Figure 4 — swap overhead vs distillation overhead D (path-oblivious balancing)",
        &rows,
    );
    let out = std::path::Path::new("target").join("fig4.csv");
    if std::fs::create_dir_all("target").is_ok() && std::fs::write(&out, csv).is_ok() {
        println!("wrote {}", out.display());
    }
    println!(
        "\nExpected shape (paper): overhead ≥ 1 everywhere, grows sharply with D; \
         |N| fixed at the paper's 25 (9 under --quick)."
    );
}
