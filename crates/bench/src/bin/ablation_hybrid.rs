//! Experiment E5: the §6 "hybrid oblivious with minimal planning" idea —
//! comparing pure oblivious balancing, the hybrid repair variant, and the two
//! planned-path baselines on the same workload.
//!
//! Run with `cargo run -p qnet-bench --bin ablation_hybrid --release`
//! (`--quick` shrinks the sweep).

use qnet_bench::{section5_config, SweepScale};
use qnet_core::experiment::Experiment;
use qnet_core::policy::PolicyId;
use qnet_topology::Topology;

fn main() {
    let scale = SweepScale::from_args();
    let nodes = match scale {
        SweepScale::Paper => 25,
        SweepScale::Quick => 9,
    };
    let side = (nodes as f64).sqrt().round() as usize;
    let topology = Topology::RandomConnectedGrid { side };
    println!("== E5: protocol-mode comparison on {} ==", topology.label());
    println!(
        "{:>28} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "mode", "overhead", "swaps", "satisfied", "repairs", "sim seconds"
    );
    for mode in [
        PolicyId::OBLIVIOUS,
        PolicyId::HYBRID,
        PolicyId::GREEDY,
        PolicyId::PLANNED,
        PolicyId::CONNECTIONLESS,
    ] {
        let config = section5_config(topology, 1.0, mode, scale);
        let result = Experiment::new(config).run();
        println!(
            "{:>28} {:>10} {:>10} {:>11}/{:<3} {:>10} {:>14.1}",
            format!("{mode:?}"),
            result
                .swap_overhead()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            result.swaps_performed,
            result.satisfied_requests,
            result.satisfied_requests as u64 + result.unsatisfied_requests,
            result.metrics.repair_swaps(),
            result.simulated_seconds,
        );
    }
    println!(
        "\nExpected shape: hybrid satisfies requests at least as fast as pure oblivious \
         (its repairs mitigate the starvation effect the paper describes) at a modest \
         extra swap cost; the planned baselines spend the fewest swaps but lose the \
         pre-positioning benefit the paper argues for."
    );
}
