//! Experiment E3: the §3.3 steady-state LP objectives, evaluated on small
//! cycle and grid generation graphs with a few consumer pairs.
//!
//! There is no figure for this in the paper (the LP is presented
//! analytically); this binary reports, for each objective, the total
//! generation, total consumption, total swap rate and (where applicable) the
//! proportional-fairness factor α, in both a generation-sufficient and a
//! generation-deficient demand regime.
//!
//! Run with `cargo run -p qnet-bench --bin lp_objectives --release`.

use qnet_core::lp_model::{LpObjective, SteadyStateModel};
use qnet_core::rates::RateMatrices;
use qnet_topology::{builders, NodeId, NodePair};

fn demand_pairs(n: usize) -> Vec<(NodePair, f64)> {
    // A handful of consumer pairs spread across the graph.
    let far = |a: usize, b: usize| NodePair::new(NodeId::from(a), NodeId::from(b % n));
    vec![
        (far(0, n / 2), 1.0),
        (far(1, 1 + n / 3), 1.0),
        (far(2, 2 + n / 2), 1.0),
    ]
}

fn report(label: &str, graph: &qnet_topology::Graph, demand_scale: f64) {
    let capacity = RateMatrices::uniform_generation(graph, 1.0);
    let mut demand = RateMatrices::zeros(graph.node_count());
    for (pair, base) in demand_pairs(graph.node_count()) {
        demand.set_consumption(pair, base * demand_scale);
    }
    let model = SteadyStateModel::new(&capacity, &demand);
    println!("\n--- {label} (demand scale {demand_scale}) ---");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "objective", "total g", "total c", "swap rate", "alpha", "status"
    );
    for objective in [
        LpObjective::MinTotalGeneration,
        LpObjective::MinMaxGeneration,
        LpObjective::MaxTotalConsumption,
        LpObjective::MaxMinConsumption,
        LpObjective::MaxProportionalAlpha,
    ] {
        let sol = model.solve(objective);
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>8} {:>12}",
            format!("{objective:?}"),
            sol.total_generation(),
            sol.total_consumption(),
            sol.total_swap_rate(),
            sol.alpha
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".to_string()),
            format!("{:?}", sol.status),
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cycle_n, grid_side) = if quick { (6, 3) } else { (9, 3) };
    let cycle = builders::cycle(cycle_n);
    let grid = builders::torus_grid(grid_side);

    // Generation-sufficient regime: modest demand, the generation-minimising
    // objectives are the interesting ones.
    report(&format!("cycle-{cycle_n}"), &cycle, 0.2);
    report(&format!("torus-{grid_side}x{grid_side}"), &grid, 0.2);

    // Generation-deficient regime: demand exceeds what the capacities can
    // deliver, so the consumption-maximising objectives bind.
    report(&format!("cycle-{cycle_n}"), &cycle, 2.0);
    report(&format!("torus-{grid_side}x{grid_side}"), &grid, 2.0);

    println!(
        "\nReading guide: in the sufficient regime MinTotalGeneration reports the cheapest \
         provisioning that meets the demand; in the deficient regime MaxTotalConsumption \
         saturates the bottleneck cut, MaxMinConsumption trades total throughput for \
         fairness, and alpha is the uniform fraction of demand that can be served."
    );
}
