//! Regenerate the Figure 4 and Figure 5 sweeps through the `qnet-campaign`
//! engine: one declarative grid per figure, executed in parallel, reported
//! as per-cell statistics with confidence intervals — the campaign-engine
//! successor to the serial `fig4` / `fig5` binaries.
//!
//! ```sh
//! cargo run --release -p qnet-bench --bin campaign_figures            # paper scale
//! cargo run --release -p qnet-bench --bin campaign_figures -- --quick # CI scale
//! ```

use qnet_bench::{figure4_scale, figure5_sizes, figure_topologies, SweepScale};
use qnet_campaign::{aggregate, run_campaign, CampaignReport, RunnerConfig, ScenarioGrid};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;

fn workload(scale: SweepScale) -> WorkloadSpec {
    // node_count 0 is patched per topology at expansion time.
    WorkloadSpec::closed_loop(0, 35, scale.requests())
}

/// Figure 4: overhead vs distillation overhead `D` at fixed |N|.
fn fig4_grid(scale: SweepScale) -> ScenarioGrid {
    let (nodes, ds) = figure4_scale(scale);
    ScenarioGrid::new(11)
        .with_topologies(figure_topologies(nodes))
        .with_modes(vec![PolicyId::OBLIVIOUS])
        .with_distillations(ds)
        .with_workloads(vec![workload(scale)])
        .with_replicates(scale.seeds().len() as u32)
        .with_horizon_s(scale.horizon_s())
}

/// Figure 5: overhead vs network size |N| at `D = 1`.
fn fig5_grids(scale: SweepScale) -> Vec<ScenarioGrid> {
    figure5_sizes(scale)
        .into_iter()
        .map(|nodes| {
            ScenarioGrid::new(11)
                .with_topologies(figure_topologies(nodes))
                .with_modes(vec![PolicyId::OBLIVIOUS])
                .with_workloads(vec![workload(scale)])
                .with_replicates(scale.seeds().len() as u32)
                .with_horizon_s(scale.horizon_s())
        })
        .collect()
}

fn print_report(title: &str, report: &CampaignReport) {
    println!("== {title} ==");
    println!(
        "{:<18} {:>5} {:>5} {:>10} {:>8} {:>10}",
        "topology", "N", "D", "overhead", "±95%", "satisfied"
    );
    for cell in &report.cell_reports {
        println!(
            "{:<18} {:>5} {:>5} {:>10} {:>8} {:>9.0}%",
            cell.key.topology,
            cell.key.nodes,
            cell.key.distillation,
            cell.overhead_mean
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.overhead_ci95
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.satisfaction_mean * 100.0,
        );
    }
    println!();
}

fn main() {
    let scale = SweepScale::from_args();
    let runner = RunnerConfig::default();

    let grid4 = fig4_grid(scale);
    let run4 = run_campaign(&grid4, &runner);
    eprintln!(
        "fig4 campaign: {} scenarios in {:.2}s on {} threads",
        run4.outcomes.len(),
        run4.wall_seconds,
        run4.threads_used
    );
    print_report(
        "Figure 4 — swap overhead vs distillation overhead D (campaign engine)",
        &aggregate(&grid4, &run4),
    );

    for grid5 in fig5_grids(scale) {
        let run5 = run_campaign(&grid5, &runner);
        eprintln!(
            "fig5 campaign (N={}): {} scenarios in {:.2}s on {} threads",
            grid5.topologies[0].node_count(),
            run5.outcomes.len(),
            run5.wall_seconds,
            run5.threads_used
        );
        print_report(
            &format!(
                "Figure 5 — swap overhead at |N| = {} (campaign engine)",
                grid5.topologies[0].node_count()
            ),
            &aggregate(&grid5, &run5),
        );
    }
}
