//! Regenerate the Figure 4 and Figure 5 sweeps through the `qnet-campaign`
//! engine: one declarative grid per figure, executed in parallel, reported
//! as per-cell statistics with confidence intervals — the campaign-engine
//! successor to the serial `fig4` / `fig5` binaries.
//!
//! ```sh
//! cargo run --release -p qnet-bench --bin campaign_figures            # paper scale
//! cargo run --release -p qnet-bench --bin campaign_figures -- --quick # CI scale
//! cargo run --release -p qnet-bench --bin campaign_figures -- \
//!     --cache-dir target/figure-cache                     # incremental reruns
//! ```
//!
//! With `--cache-dir`, every grid's outcomes are read from / appended to
//! the content-addressed campaign cache, so re-running the paper-scale
//! sweeps after an interruption (or after adding one more size to the Fig 5
//! family) only simulates the scenarios that are genuinely new — each grid
//! prints how many scenarios it simulated vs served from cache.

use qnet_bench::{figure4_scale, figure5_sizes, figure_topologies, SweepScale};
use qnet_campaign::{
    aggregate, run_campaign, run_campaign_cached, CampaignReport, CampaignResult, OutcomeCache,
    RunnerConfig, ScenarioGrid,
};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use std::path::PathBuf;

fn workload(scale: SweepScale) -> WorkloadSpec {
    // node_count 0 is patched per topology at expansion time.
    WorkloadSpec::closed_loop(0, 35, scale.requests())
}

/// Figure 4: overhead vs distillation overhead `D` at fixed |N|.
fn fig4_grid(scale: SweepScale) -> ScenarioGrid {
    let (nodes, ds) = figure4_scale(scale);
    ScenarioGrid::new(11)
        .with_topologies(figure_topologies(nodes))
        .with_modes(vec![PolicyId::OBLIVIOUS])
        .with_distillations(ds)
        .with_workloads(vec![workload(scale)])
        .with_replicates(scale.seeds().len() as u32)
        .with_horizon_s(scale.horizon_s())
}

/// Figure 5: overhead vs network size |N| at `D = 1`.
fn fig5_grids(scale: SweepScale) -> Vec<ScenarioGrid> {
    figure5_sizes(scale)
        .into_iter()
        .map(|nodes| {
            ScenarioGrid::new(11)
                .with_topologies(figure_topologies(nodes))
                .with_modes(vec![PolicyId::OBLIVIOUS])
                .with_workloads(vec![workload(scale)])
                .with_replicates(scale.seeds().len() as u32)
                .with_horizon_s(scale.horizon_s())
        })
        .collect()
}

/// `--cache-dir DIR` from the command line, if given.
fn cache_dir_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--cache-dir" {
            return match args.next() {
                Some(dir) => Some(PathBuf::from(dir)),
                None => {
                    eprintln!("campaign_figures: --cache-dir needs a value");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

/// Run one figure grid, through the outcome cache when one is configured.
fn run_grid(label: &str, grid: &ScenarioGrid, cache_dir: Option<&PathBuf>) -> CampaignResult {
    let runner = RunnerConfig::default();
    let run = match cache_dir {
        Some(dir) => {
            let mut cache = OutcomeCache::open(dir, grid)
                .unwrap_or_else(|e| panic!("cannot open cache dir {}: {e}", dir.display()));
            run_campaign_cached(grid, &runner, &mut cache, |_, _| {})
                .unwrap_or_else(|e| panic!("cache append failed: {e}"))
        }
        None => run_campaign(grid, &runner),
    };
    eprintln!(
        "{label}: {} scenarios in {:.2}s on {} threads (simulated={} cache_hits={})",
        run.outcomes.len(),
        run.wall_seconds,
        run.threads_used,
        run.simulated,
        run.cache_hits,
    );
    run
}

fn print_report(title: &str, report: &CampaignReport) {
    println!("== {title} ==");
    println!(
        "{:<18} {:>5} {:>5} {:>10} {:>8} {:>10}",
        "topology", "N", "D", "overhead", "±95%", "satisfied"
    );
    for cell in &report.cell_reports {
        println!(
            "{:<18} {:>5} {:>5} {:>10} {:>8} {:>9.0}%",
            cell.key.topology,
            cell.key.nodes,
            cell.key.distillation,
            cell.overhead_mean
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.overhead_ci95
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.satisfaction_mean * 100.0,
        );
    }
    println!();
}

fn main() {
    let scale = SweepScale::from_args();
    let cache_dir = cache_dir_from_args();

    let grid4 = fig4_grid(scale);
    let run4 = run_grid("fig4 campaign", &grid4, cache_dir.as_ref());
    print_report(
        "Figure 4 — swap overhead vs distillation overhead D (campaign engine)",
        &aggregate(&grid4, &run4),
    );

    for grid5 in fig5_grids(scale) {
        let label = format!("fig5 campaign (N={})", grid5.topologies[0].node_count());
        let run5 = run_grid(&label, &grid5, cache_dir.as_ref());
        print_report(
            &format!(
                "Figure 5 — swap overhead at |N| = {} (campaign engine)",
                grid5.topologies[0].node_count()
            ),
            &aggregate(&grid5, &run5),
        );
    }
}
