//! Microbenchmarks of the §4 balancer: a single preferable-swap scan and a
//! full run-to-quiescence balancing pass on a stocked inventory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_core::balancer::BalancerPolicy;
use qnet_core::inventory::Inventory;
use qnet_topology::{builders, NodeId, NodePair};

/// Build an inventory with `per_edge` pairs on every edge of a torus grid.
fn stocked_torus(side: usize, per_edge: u64) -> Inventory {
    let graph = builders::torus_grid(side);
    let mut inv = Inventory::new(graph.node_count());
    for (a, b) in graph.edges() {
        for _ in 0..per_edge {
            inv.add_pair(NodePair::new(a, b)).unwrap();
        }
    }
    inv
}

fn scan_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("balancer_scan");
    group.sample_size(30);
    for &side in &[5usize, 8] {
        let inv = stocked_torus(side, 6);
        let policy = BalancerPolicy;
        let overhead = |_: NodePair| 1.0;
        group.bench_with_input(
            BenchmarkId::new("find_preferable", side * side),
            &inv,
            |b, inv| {
                b.iter(|| {
                    let mut found = 0;
                    for node in 0..inv.node_count() {
                        if policy
                            .find_preferable_swap(inv, inv, NodeId::from(node), &overhead)
                            .is_some()
                        {
                            found += 1;
                        }
                    }
                    found
                })
            },
        );
    }
    group.finish();
}

fn quiescence_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("balancer_quiescence");
    group.sample_size(10);
    for &side in &[4usize, 5] {
        group.bench_with_input(BenchmarkId::new("torus", side * side), &side, |b, &side| {
            b.iter(|| {
                let mut inv = stocked_torus(side, 5);
                let policy = BalancerPolicy;
                let overhead = |_: NodePair| 1.0;
                policy.run_to_quiescence(&mut inv, &overhead, 50_000).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scan_benchmark, quiescence_benchmark);
criterion_main!(benches);
