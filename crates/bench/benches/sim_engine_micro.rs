//! Microbenchmarks of the discrete-event engine: raw event throughput and
//! end-to-end simulation-steps-per-second of the quantum-network model.
//!
//! `BENCH_JSON=BENCH_sim_engine.json cargo bench -p qnet-bench --bench
//! sim_engine_micro` additionally appends one JSON record per benchmark —
//! how the committed `BENCH_sim_engine.json` baseline is produced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_core::classical::KnowledgeModel;
use qnet_core::control::{PropagationDelays, StaleControl};
use qnet_core::experiment::{Experiment, ExperimentConfig};
use qnet_core::inventory::InventoryBackend;
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use qnet_core::{BalancerPolicy, Inventory, NetworkConfig, PhysicsModel};
use qnet_sim::{Engine, EventQueue, SimDuration, SimTime, World};
use qnet_topology::{
    bfs_path, builders, FabricSpec, HardwarePreset, NodeId, NodePair, PathOracle, Topology,
};
use std::collections::BTreeMap;

struct PingWorld {
    remaining: u64,
}

impl World for PingWorld {
    type Event = ();
    fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule_after(now, SimDuration::from_nanos(10), ());
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(30);
    for &events in &[10_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("event_chain", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut engine = Engine::new(PingWorld { remaining: events });
                    engine.queue_mut().schedule_at(SimTime::ZERO, ());
                    engine.run_to_completion();
                    engine.delivered()
                })
            },
        );
    }
    group.finish();
}

fn network_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_simulation");
    group.sample_size(10);
    for &nodes in &[9usize, 16] {
        let config = ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes }),
            workload: WorkloadSpec::paper_default(nodes).with_requests(10),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 3,
            max_sim_time_s: 1_500.0,
        };
        group.bench_with_input(
            BenchmarkId::new("oblivious_run", nodes),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().swaps_performed),
        );
    }
    group.finish();
}

fn scale_free_pair_generation(c: &mut Criterion) {
    // Internet-scale pair generation: |N| = 1000 Barabási–Albert graph on
    // metro-fiber hardware, ~2000 heterogeneous edges each firing at its
    // own length-derived rate. Exercises the neighbor-indexed sparse
    // inventory (peer index + occupied-pool maps) — the structures that
    // replaced the dense per-pair scans for this regime.
    let mut group = c.benchmark_group("scale_free_pair_generation");
    group.sample_size(10);
    let nodes = 1000usize;
    let config = ExperimentConfig {
        network: NetworkConfig::new(Topology::ScaleFree { nodes, attach: 2 })
            .with_fabric(FabricSpec::new(HardwarePreset::MetroFiber)),
        workload: WorkloadSpec::closed_loop(nodes, 20, 10),
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed: 11,
        max_sim_time_s: 5.0,
    };
    group.bench_with_input(
        BenchmarkId::new("metro_fiber_run", nodes),
        &config,
        |b, config| b.iter(|| Experiment::new(*config).run().metrics.pairs_generated),
    );
    group.finish();
}

fn open_loop_million(c: &mut Criterion) {
    // Million-flow hot path: lazily-streamed Poisson arrivals driven to full
    // satisfaction (cycle) or through a hardware-calibrated fabric
    // (scale-free @ metro fiber). Rates are tuned so the 25-node cycle
    // serves every arrival (scan capacity above offered load), which keeps
    // the pending queue bounded and pushes the metrics recorder past its
    // exact-sample threshold into sketch mode — the bench exercises the
    // timing wheel, the lazy arrival stream, and the streaming recorder
    // together. The `cycle25_heap` row pins the `BinaryHeap` fallback via
    // `QNET_EVENT_QUEUE` for a same-binary wheel-vs-heap comparison.
    let mut group = c.benchmark_group("open_loop_million");
    let cycle_config = |requests: u64| {
        let nodes = 25usize;
        let rate_hz = 500.0;
        let horizon_s = requests as f64 / rate_hz;
        ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes })
                .with_generation_rate(400.0)
                .with_swap_scan_rate(200.0),
            workload: WorkloadSpec::open_loop(nodes, 35, rate_hz, horizon_s),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 7,
            max_sim_time_s: horizon_s * 2.0,
        }
    };
    let scale_free_config = |requests: u64| {
        let nodes = 1000usize;
        let rate_hz = 500.0;
        let horizon_s = requests as f64 / rate_hz;
        ExperimentConfig {
            network: NetworkConfig::new(Topology::ScaleFree { nodes, attach: 2 })
                .with_fabric(FabricSpec::new(HardwarePreset::MetroFiber)),
            workload: WorkloadSpec::open_loop(nodes, 35, rate_hz, horizon_s),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 7,
            max_sim_time_s: horizon_s * 2.0,
        }
    };
    for &requests in &[100_000u64, 1_000_000] {
        group.sample_size(if requests >= 1_000_000 { 2 } else { 5 });
        let config = cycle_config(requests);
        group.bench_with_input(
            BenchmarkId::new("cycle25_wheel", requests),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().satisfied_requests),
        );
    }
    // Heap fallback at 10⁵ events only: the acceptance bar is "wheel no
    // slower than heap at this scale", not a full heap sweep.
    {
        group.sample_size(5);
        let config = cycle_config(100_000);
        std::env::set_var("QNET_EVENT_QUEUE", "heap");
        group.bench_with_input(
            BenchmarkId::new("cycle25_heap", 100_000u64),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().satisfied_requests),
        );
        std::env::remove_var("QNET_EVENT_QUEUE");
    }
    for &requests in &[100_000u64, 1_000_000] {
        group.sample_size(if requests >= 1_000_000 { 2 } else { 3 });
        let config = scale_free_config(requests);
        group.bench_with_input(
            BenchmarkId::new("scale_free1000_wheel", requests),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().metrics.arrived_requests),
        );
    }
    group.finish();
}

fn path_oracle_cold_vs_memoized_bfs(c: &mut Criterion) {
    // Shortest-path service on an internet-scale graph: the legacy approach
    // (one full BFS per distinct pair, memoized — what the planned/greedy
    // `PathCache`s used to do) against a cold `PathOracle` (shared per-source
    // BFS rows, O(path) reconstruction per query). The query mix mirrors what
    // the engine offers: a workload's consumer pairs draw from a small
    // endpoint set, so sources repeat across pairs — exactly where one
    // memoized row per source beats one memoized BFS per pair.
    let mut group = c.benchmark_group("path_oracle");
    group.sample_size(10);
    let nodes = 1000usize;
    let graph = builders::scale_free(nodes, 2, 7);
    // 2048 queries over 256 distinct pairs drawn from 32 consumer endpoints
    // (deterministic, no RNG).
    let queries: Vec<(NodeId, NodeId)> = (0..2048u32)
        .map(|i| {
            let k = i % 256;
            let a = ((k % 32).wrapping_mul(131) + 7) % nodes as u32;
            let b = (k.wrapping_mul(211) + 13) % nodes as u32;
            let b = if b == a { (b + 1) % nodes as u32 } else { b };
            (NodeId(a), NodeId(b))
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("memoized_bfs", nodes),
        &queries,
        |b, queries| {
            b.iter(|| {
                let mut cache: BTreeMap<NodePair, Option<usize>> = BTreeMap::new();
                queries
                    .iter()
                    .filter_map(|&(s, t)| {
                        *cache
                            .entry(NodePair::new(s, t))
                            .or_insert_with(|| bfs_path(&graph, s, t).map(|p| p.nodes.len() - 1))
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("oracle_cold", nodes),
        &queries,
        |b, queries| {
            b.iter(|| {
                let oracle = PathOracle::new(&graph);
                queries
                    .iter()
                    .filter_map(|&(s, t)| oracle.hops(&graph, s, t))
                    .sum::<usize>()
            })
        },
    );
    group.finish();
}

fn inventory_hot_scan(c: &mut Criterion) {
    // The balancer's swap-scan inner loop on a hot 25-node world, per
    // inventory backend: every node scans once and executes its preferable
    // swap against a well-stocked decoherent inventory. This is the
    // per-event cost that runs millions of times in the open-loop stress
    // path — pool pushes, FIFO takes, and slot recycling all included.
    let mut group = c.benchmark_group("inventory_hot_scan");
    group.sample_size(30);
    let n = 25usize;
    for (label, backend) in [
        ("flat", InventoryBackend::Flat),
        ("btree", InventoryBackend::BTree),
    ] {
        let mut stocked = Inventory::with_backend(n, backend);
        stocked.enable_lot_tracking(&PhysicsModel::decoherent(5.0));
        // Deep cycle-edge pools plus a sprinkling of mid-range pairs so
        // every node has several rich peers and scans find work.
        for i in 0..n as u32 {
            let next = (i + 1) % n as u32;
            for _ in 0..6 {
                stocked
                    .add_pair(NodePair::new(NodeId(i), NodeId(next)))
                    .unwrap();
            }
            stocked
                .add_pair(NodePair::new(NodeId(i), NodeId((i + 7) % n as u32)))
                .unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("scan_and_swap", label),
            &stocked,
            |b, stocked| {
                b.iter(|| {
                    let mut inv = stocked.clone();
                    let policy = BalancerPolicy;
                    let overhead = |_: NodePair| 1.0;
                    let mut swaps = 0u32;
                    for node in (0..n).map(NodeId::from) {
                        if policy.scan_and_swap(&mut inv, node, &overhead).is_some() {
                            swaps += 1;
                        }
                    }
                    swaps
                })
            },
        );
    }
    group.finish();
}

fn knowledge_view(c: &mut Criterion) {
    // The stale control plane's hot loop and its end-to-end cost.
    //
    // `exchange_deliver` isolates the plane's own bookkeeping on a 100-node
    // cycle: one full round of rotating-peer exchanges (row snapshots into
    // the in-flight heap) followed by maturing every delivery into the
    // per-node views — the work the world does around each gossip tick,
    // with no simulation attached.
    //
    // `gossip_run` is the same 25-node closed-loop experiment per knowledge
    // backend: the latency-aware stale plane (default) vs the legacy
    // synchronous refresh (`QNET_KNOWLEDGE=truth`), a same-binary
    // comparison mirroring the `cycle25_heap` row. The two backends do
    // different simulated work (stale rows change decisions), so compare
    // each row against its own baseline, not against each other.
    let mut group = c.benchmark_group("knowledge_view");
    group.sample_size(20);
    {
        let n = 100usize;
        let graph = Topology::Cycle { nodes: n }.build(0);
        let oracle = PathOracle::new(&graph);
        let delays = PropagationDelays::new(&graph, None, &oracle);
        let mut truth = Inventory::new(n);
        for i in 0..n as u32 {
            let next = (i + 1) % n as u32;
            for _ in 0..4 {
                truth
                    .add_pair(NodePair::new(NodeId(i), NodeId(next)))
                    .unwrap();
            }
        }
        group.bench_with_input(
            BenchmarkId::new("exchange_deliver", n),
            &(delays, truth),
            |b, (delays, truth)| {
                b.iter(|| {
                    let mut ctl = StaleControl::new(n, 2, 0.25, delays.clone());
                    for round in 0..8u32 {
                        let now = SimTime::from_secs_f64(round as f64 * 0.25);
                        ctl.deliver_matured(now);
                        for node in (0..n).map(NodeId::from) {
                            ctl.exchange(now, node, truth);
                        }
                    }
                    ctl.deliver_matured(SimTime::from_secs_f64(10.0));
                    ctl.in_flight_len()
                })
            },
        );
    }
    {
        group.sample_size(10);
        let config = ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes: 25 }),
            workload: WorkloadSpec::closed_loop(25, 10, 12),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Gossip {
                peers_per_refresh: 2,
                refresh_period_s: 0.5,
            },
            seed: 11,
            max_sim_time_s: 4_000.0,
        };
        group.bench_with_input(
            BenchmarkId::new("gossip_run", "stale"),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().satisfied_requests),
        );
        std::env::set_var("QNET_KNOWLEDGE", "truth");
        group.bench_with_input(
            BenchmarkId::new("gossip_run", "truth"),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().satisfied_requests),
        );
        std::env::remove_var("QNET_KNOWLEDGE");
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_throughput,
    network_simulation_throughput,
    scale_free_pair_generation,
    open_loop_million,
    path_oracle_cold_vs_memoized_bfs,
    inventory_hot_scan,
    knowledge_view
);
criterion_main!(benches);
