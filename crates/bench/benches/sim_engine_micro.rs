//! Microbenchmarks of the discrete-event engine: raw event throughput and
//! end-to-end simulation-steps-per-second of the quantum-network model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_core::classical::KnowledgeModel;
use qnet_core::experiment::{Experiment, ExperimentConfig};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use qnet_core::NetworkConfig;
use qnet_sim::{Engine, EventQueue, SimDuration, SimTime, World};
use qnet_topology::Topology;

struct PingWorld {
    remaining: u64,
}

impl World for PingWorld {
    type Event = ();
    fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule_after(now, SimDuration::from_nanos(10), ());
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(30);
    for &events in &[10_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("event_chain", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut engine = Engine::new(PingWorld { remaining: events });
                    engine.queue_mut().schedule_at(SimTime::ZERO, ());
                    engine.run_to_completion();
                    engine.delivered()
                })
            },
        );
    }
    group.finish();
}

fn network_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_simulation");
    group.sample_size(10);
    for &nodes in &[9usize, 16] {
        let config = ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes }),
            workload: WorkloadSpec::paper_default(nodes).with_requests(10),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 3,
            max_sim_time_s: 1_500.0,
        };
        group.bench_with_input(
            BenchmarkId::new("oblivious_run", nodes),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().swaps_performed),
        );
    }
    group.finish();
}

criterion_group!(benches, engine_throughput, network_simulation_throughput);
criterion_main!(benches);
