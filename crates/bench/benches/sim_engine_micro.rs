//! Microbenchmarks of the discrete-event engine: raw event throughput and
//! end-to-end simulation-steps-per-second of the quantum-network model.
//!
//! `BENCH_JSON=BENCH_sim_engine.json cargo bench -p qnet-bench --bench
//! sim_engine_micro` additionally appends one JSON record per benchmark —
//! how the committed `BENCH_sim_engine.json` baseline is produced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_core::classical::KnowledgeModel;
use qnet_core::experiment::{Experiment, ExperimentConfig};
use qnet_core::policy::PolicyId;
use qnet_core::workload::WorkloadSpec;
use qnet_core::NetworkConfig;
use qnet_sim::{Engine, EventQueue, SimDuration, SimTime, World};
use qnet_topology::{FabricSpec, HardwarePreset, Topology};

struct PingWorld {
    remaining: u64,
}

impl World for PingWorld {
    type Event = ();
    fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.schedule_after(now, SimDuration::from_nanos(10), ());
        }
    }
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(30);
    for &events in &[10_000u64, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("event_chain", events),
            &events,
            |b, &events| {
                b.iter(|| {
                    let mut engine = Engine::new(PingWorld { remaining: events });
                    engine.queue_mut().schedule_at(SimTime::ZERO, ());
                    engine.run_to_completion();
                    engine.delivered()
                })
            },
        );
    }
    group.finish();
}

fn network_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_simulation");
    group.sample_size(10);
    for &nodes in &[9usize, 16] {
        let config = ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes }),
            workload: WorkloadSpec::paper_default(nodes).with_requests(10),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 3,
            max_sim_time_s: 1_500.0,
        };
        group.bench_with_input(
            BenchmarkId::new("oblivious_run", nodes),
            &config,
            |b, config| b.iter(|| Experiment::new(*config).run().swaps_performed),
        );
    }
    group.finish();
}

fn scale_free_pair_generation(c: &mut Criterion) {
    // Internet-scale pair generation: |N| = 1000 Barabási–Albert graph on
    // metro-fiber hardware, ~2000 heterogeneous edges each firing at its
    // own length-derived rate. Exercises the neighbor-indexed sparse
    // inventory (peer index + occupied-pool maps) — the structures that
    // replaced the dense per-pair scans for this regime.
    let mut group = c.benchmark_group("scale_free_pair_generation");
    group.sample_size(10);
    let nodes = 1000usize;
    let config = ExperimentConfig {
        network: NetworkConfig::new(Topology::ScaleFree { nodes, attach: 2 })
            .with_fabric(FabricSpec::new(HardwarePreset::MetroFiber)),
        workload: WorkloadSpec::closed_loop(nodes, 20, 10),
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed: 11,
        max_sim_time_s: 5.0,
    };
    group.bench_with_input(
        BenchmarkId::new("metro_fiber_run", nodes),
        &config,
        |b, config| b.iter(|| Experiment::new(*config).run().metrics.pairs_generated),
    );
    group.finish();
}

criterion_group!(
    benches,
    engine_throughput,
    network_simulation_throughput,
    scale_free_pair_generation
);
criterion_main!(benches);
