//! Microbenchmarks of the quantum substrate: teleportation, entanglement
//! swapping at the state-vector level, Werner-state construction and the
//! distillation planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_quantum::bell::werner_state;
use qnet_quantum::complex::Complex;
use qnet_quantum::distill::{plan_distillation, DistillationProtocol};
use qnet_quantum::swap::{chain_swap_fidelity, swap_ideal};
use qnet_quantum::teleport::teleport_over_werner;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn teleport_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_teleport");
    group.sample_size(50);
    group.bench_function("werner_channel_f95", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        b.iter(|| {
            teleport_over_werner(Complex::real(0.6), Complex::real(0.8), 0.95, &mut rng).fidelity
        })
    });
    group.finish();
}

fn swap_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_swap");
    group.sample_size(50);
    group.bench_function("state_vector_swap", |b| {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter(|| swap_ideal(&mut rng).fidelity)
    });
    for &n in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("werner_chain", n), &n, |b, &n| {
            b.iter(|| chain_swap_fidelity(0.98, n))
        });
    }
    group.finish();
}

fn werner_and_distill_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_werner_distill");
    group.sample_size(50);
    group.bench_function("werner_state_build", |b| {
        b.iter(|| werner_state(0.85).purity())
    });
    group.bench_function("distillation_plan_0.75_to_0.99", |b| {
        b.iter(|| plan_distillation(DistillationProtocol::Bbpssw, 0.75, 0.99, 64))
    });
    group.finish();
}

criterion_group!(
    benches,
    teleport_benchmark,
    swap_benchmark,
    werner_and_distill_benchmark
);
criterion_main!(benches);
