//! Microbenchmarks of the LP substrate and of building/solving the paper's
//! steady-state model at small network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_core::lp_model::{LpObjective, SteadyStateModel};
use qnet_core::rates::RateMatrices;
use qnet_lp::{LinearProgram, Objective};
use qnet_topology::{builders, NodeId, NodePair};

fn dense_random_lp(vars: usize, constraints: usize) -> LinearProgram {
    // A deterministic pseudo-random LP: maximise Σ x subject to row sums.
    let mut lp = LinearProgram::new();
    let xs: Vec<_> = (0..vars)
        .map(|i| lp.add_variable(format!("x{i}")))
        .collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0 + 0.1
    };
    for r in 0..constraints {
        let terms: Vec<_> = xs.iter().map(|&v| (v, next())).collect();
        lp.add_le(format!("row{r}"), terms, 10.0 + next());
    }
    lp.set_objective(Objective::Maximize(xs.iter().map(|&v| (v, 1.0)).collect()));
    lp
}

fn simplex_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_solve");
    group.sample_size(20);
    for &(vars, cons) in &[(20usize, 10usize), (60, 30), (120, 60)] {
        let lp = dense_random_lp(vars, cons);
        group.bench_with_input(
            BenchmarkId::new("dense", format!("{vars}x{cons}")),
            &lp,
            |b, lp| b.iter(|| qnet_lp::simplex::solve(lp)),
        );
    }
    group.finish();
}

fn steady_state_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_lp");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let graph = builders::cycle(n);
        let capacity = RateMatrices::uniform_generation(&graph, 1.0);
        let mut demand = RateMatrices::zeros(n);
        demand.set_consumption(NodePair::new(NodeId(0), NodeId::from(n / 2)), 0.25);
        let model = SteadyStateModel::new(&capacity, &demand);
        group.bench_with_input(
            BenchmarkId::new("min_total_generation", n),
            &model,
            |b, m| b.iter(|| m.solve(LpObjective::MinTotalGeneration)),
        );
    }
    group.finish();
}

criterion_group!(benches, simplex_benchmark, steady_state_benchmark);
criterion_main!(benches);
