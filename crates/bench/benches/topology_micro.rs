//! Microbenchmarks of the topology substrate: builders and shortest paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_topology::shortest_path::all_pairs_distances;
use qnet_topology::{bfs_path, builders, NodeId, Topology};

fn builder_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_builders");
    group.sample_size(30);
    for &side in &[5usize, 10, 20] {
        group.bench_with_input(
            BenchmarkId::new("random_connected_grid", side),
            &side,
            |b, &side| b.iter(|| builders::random_connected_grid(side, 42).edge_count()),
        );
    }
    group.bench_function("erdos_renyi_100", |b| {
        b.iter(|| builders::erdos_renyi_connected(100, 0.05, 7).edge_count())
    });
    group.finish();
}

fn shortest_path_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_shortest_paths");
    group.sample_size(30);
    for &side in &[5usize, 10] {
        let g = Topology::TorusGrid { side }.build_deterministic();
        group.bench_with_input(
            BenchmarkId::new("all_pairs_bfs", side * side),
            &g,
            |b, g| b.iter(|| all_pairs_distances(g).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("single_bfs_path", side * side),
            &g,
            |b, g| {
                b.iter(|| {
                    bfs_path(g, NodeId(0), NodeId::from(side * side - 1))
                        .map(|p| p.hops())
                        .unwrap_or(0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, builder_benchmark, shortest_path_benchmark);
criterion_main!(benches);
