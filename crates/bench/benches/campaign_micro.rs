//! Micro-benchmarks of the campaign engine: grid expansion, arrival
//! generation, serial vs. parallel execution of a fixed scenario batch, and
//! aggregation cost (closed- and open-loop latency paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_campaign::{aggregate, run_campaign, RunnerConfig, ScenarioGrid};
use qnet_core::policy::PolicyId;
use qnet_core::workload::{PairSelection, WorkloadSpec};
use qnet_topology::Topology;

fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new(3)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::TorusGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 5)])
        .with_replicates(4)
        .with_horizon_s(800.0)
}

fn open_loop_grid() -> ScenarioGrid {
    bench_grid().with_workloads(vec![WorkloadSpec::open_loop(0, 5, 0.1, 300.0)
        .with_discipline(PairSelection::ZipfSkew { s: 1.1 })])
}

fn campaign_benches(c: &mut Criterion) {
    let grid = bench_grid();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    group.bench_function("grid_expansion", |b| {
        b.iter(|| {
            let scenarios: Vec<_> = grid.scenarios().collect();
            assert_eq!(scenarios.len(), grid.scenario_count());
            scenarios
        })
    });

    // Arrival generation: materialising 10k open-loop Poisson arrivals with
    // Zipf pair selection (the per-scenario workload cost of a sweep).
    let arrival_spec = WorkloadSpec::open_loop(25, 35, 20.0, 500.0)
        .with_discipline(PairSelection::ZipfSkew { s: 1.1 });
    group.bench_function("arrival_generation_10k", |b| {
        b.iter(|| {
            let w = arrival_spec.generate(7);
            assert!(!w.is_empty());
            w
        })
    });

    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("run", threads), &threads, |b, &threads| {
            b.iter(|| run_campaign(&grid, &RunnerConfig::with_threads(threads)))
        });
    }

    let result = run_campaign(&grid, &RunnerConfig::default());
    group.bench_function("aggregate", |b| b.iter(|| aggregate(&grid, &result)));

    // Latency aggregation: the open-loop path folds per-replicate sojourn
    // means/percentiles through RunningStats on top of the overhead columns.
    let open_grid = open_loop_grid();
    let open_result = run_campaign(&open_grid, &RunnerConfig::default());
    group.bench_function("aggregate_latency_open_loop", |b| {
        b.iter(|| {
            let report = aggregate(&open_grid, &open_result);
            assert!(report.cell_reports.iter().all(|c| c.key.traffic.is_some()));
            report
        })
    });

    group.finish();
}

criterion_group!(benches, campaign_benches);
criterion_main!(benches);
