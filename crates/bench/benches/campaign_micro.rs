//! Micro-benchmarks of the campaign engine: grid expansion, arrival
//! generation, serial vs. parallel execution of a fixed scenario batch,
//! aggregation cost (closed- and open-loop latency paths), the warm
//! cache-hit path, and shard merge throughput.
//!
//! `BENCH_JSON=BENCH_campaign.json cargo bench -p qnet-bench --bench
//! campaign_micro` additionally appends one JSON record per benchmark —
//! how the committed `BENCH_campaign.json` baseline is produced.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use qnet_campaign::{
    aggregate, merge_shards, read_shard, run_campaign, run_campaign_cached, shard_to_string,
    OutcomeCache, RunnerConfig, ScenarioGrid, ShardSpec,
};
use qnet_core::policy::PolicyId;
use qnet_core::workload::{PairSelection, WorkloadSpec};
use qnet_topology::Topology;

fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new(3)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::TorusGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 5)])
        .with_replicates(4)
        .with_horizon_s(800.0)
}

fn open_loop_grid() -> ScenarioGrid {
    bench_grid().with_workloads(vec![WorkloadSpec::open_loop(0, 5, 0.1, 300.0)
        .with_discipline(PairSelection::ZipfSkew { s: 1.1 })])
}

fn campaign_benches(c: &mut Criterion) {
    let grid = bench_grid();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    group.bench_function("grid_expansion", |b| {
        b.iter(|| {
            let scenarios: Vec<_> = grid.scenarios().collect();
            assert_eq!(scenarios.len(), grid.scenario_count());
            scenarios
        })
    });

    // Arrival generation: materialising 10k open-loop Poisson arrivals with
    // Zipf pair selection (the per-scenario workload cost of a sweep).
    let arrival_spec = WorkloadSpec::open_loop(25, 35, 20.0, 500.0)
        .with_discipline(PairSelection::ZipfSkew { s: 1.1 });
    group.bench_function("arrival_generation_10k", |b| {
        b.iter(|| {
            let w = arrival_spec.generate(7);
            assert!(!w.is_empty());
            w
        })
    });

    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("run", threads), &threads, |b, &threads| {
            b.iter(|| run_campaign(&grid, &RunnerConfig::with_threads(threads)))
        });
    }

    let result = run_campaign(&grid, &RunnerConfig::default());
    group.bench_function("aggregate", |b| b.iter(|| aggregate(&grid, &result)));

    // Latency aggregation: the open-loop path folds per-replicate sojourn
    // means/percentiles through RunningStats on top of the overhead columns.
    let open_grid = open_loop_grid();
    let open_result = run_campaign(&open_grid, &RunnerConfig::default());
    group.bench_function("aggregate_latency_open_loop", |b| {
        b.iter(|| {
            let report = aggregate(&open_grid, &open_result);
            assert!(report.cell_reports.iter().all(|c| c.key.traffic.is_some()));
            report
        })
    });

    // The cache-hit path: a fully warm cache replays every scenario without
    // simulating — this times cache open + probe + outcome reconstruction
    // (the fixed cost every orchestrated retry and resume pays per shard).
    let cache_dir = std::env::temp_dir().join(format!("qnet-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    {
        let mut cache = OutcomeCache::open(&cache_dir, &grid).expect("open cache");
        let warmed = run_campaign_cached(&grid, &RunnerConfig::default(), &mut cache, |_, _| {})
            .expect("warm the cache");
        assert_eq!(warmed.cache_hits, 0);
    }
    group.bench_function("cache_hit_warm_replay", |b| {
        b.iter(|| {
            let mut cache = OutcomeCache::open(&cache_dir, &grid).expect("open cache");
            let result =
                run_campaign_cached(&grid, &RunnerConfig::default(), &mut cache, |_, _| {})
                    .expect("replay from cache");
            assert_eq!(result.simulated, 0, "warm replay must not simulate");
            result
        })
    });
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Merge throughput: parse a 3-way shard partition and recombine it —
    // the validation + splice cost `campaign merge` (and every orchestrated
    // final merge) pays on top of aggregation.
    let shard_texts: Vec<String> = (0..3)
        .map(|i| {
            let spec = ShardSpec::new(i, 3).expect("spec");
            let ids = spec.ids(grid.scenario_count());
            let outcomes: Vec<_> = result
                .outcomes
                .iter()
                .filter(|o| ids.contains(&o.id))
                .cloned()
                .collect();
            shard_to_string(&grid, spec, &outcomes)
        })
        .collect();
    group.bench_function("merge_shards_3way", |b| {
        b.iter_batched(
            || {
                shard_texts
                    .iter()
                    .map(|t| read_shard(t).expect("parse shard"))
                    .collect::<Vec<_>>()
            },
            |shards| merge_shards(shards).expect("merge"),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("merge_shards_3way_parse_and_merge", |b| {
        b.iter(|| {
            let shards: Vec<_> = shard_texts
                .iter()
                .map(|t| read_shard(t).expect("parse shard"))
                .collect();
            merge_shards(shards).expect("merge")
        })
    });

    group.finish();
}

criterion_group!(benches, campaign_benches);
criterion_main!(benches);
