//! Micro-benchmarks of the campaign engine: grid expansion, serial vs.
//! parallel execution of a fixed scenario batch, and aggregation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnet_campaign::{aggregate, run_campaign, RunnerConfig, ScenarioGrid};
use qnet_core::policy::PolicyId;
use qnet_core::workload::{RequestDiscipline, WorkloadSpec};
use qnet_topology::Topology;

fn bench_grid() -> ScenarioGrid {
    ScenarioGrid::new(3)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::TorusGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_workloads(vec![WorkloadSpec {
            node_count: 0,
            consumer_pairs: 5,
            requests: 5,
            discipline: RequestDiscipline::UniformRandom,
        }])
        .with_replicates(4)
        .with_horizon_s(800.0)
}

fn campaign_benches(c: &mut Criterion) {
    let grid = bench_grid();

    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);

    group.bench_function("grid_expansion", |b| {
        b.iter(|| {
            let scenarios: Vec<_> = grid.scenarios().collect();
            assert_eq!(scenarios.len(), grid.scenario_count());
            scenarios
        })
    });

    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("run", threads), &threads, |b, &threads| {
            b.iter(|| run_campaign(&grid, &RunnerConfig::with_threads(threads)))
        });
    }

    let result = run_campaign(&grid, &RunnerConfig::default());
    group.bench_function("aggregate", |b| b.iter(|| aggregate(&grid, &result)));

    group.finish();
}

criterion_group!(benches, campaign_benches);
criterion_main!(benches);
