//! Lightweight tracing for simulation models.
//!
//! A [`Tracer`] receives structured trace records as the simulation runs.
//! Production experiment runs use [`NullTracer`] (no overhead); tests and
//! debugging sessions can use [`MemoryTracer`] to capture records, or
//! [`StderrTracer`] to print them.

use crate::time::SimTime;
use std::fmt;

/// Severity / verbosity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// High-volume, per-event detail.
    Debug,
    /// Normal protocol events (swaps, consumptions, generations).
    #[default]
    Info,
    /// Unusual but non-fatal conditions (starvation, expiry).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLevel::Debug => write!(f, "DEBUG"),
            TraceLevel::Info => write!(f, "INFO"),
            TraceLevel::Warn => write!(f, "WARN"),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub time: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Free-form message.
    pub message: String,
}

/// A sink for trace records.
pub trait Tracer {
    /// Record a message at the given simulated time and level.
    fn trace(&mut self, time: SimTime, level: TraceLevel, message: &str);

    /// Whether records at `level` will be kept; models may use this to avoid
    /// building expensive messages that would be dropped.
    fn enabled(&self, level: TraceLevel) -> bool {
        let _ = level;
        true
    }
}

/// A tracer that discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn trace(&mut self, _time: SimTime, _level: TraceLevel, _message: &str) {}
    fn enabled(&self, _level: TraceLevel) -> bool {
        false
    }
}

/// A tracer that stores records in memory (useful in tests).
#[derive(Debug, Default, Clone)]
pub struct MemoryTracer {
    /// Captured records, in arrival order.
    pub records: Vec<TraceRecord>,
    /// Minimum level to keep (records below are dropped).
    pub min_level: Option<TraceLevel>,
}

impl MemoryTracer {
    /// Create a tracer that keeps everything.
    pub fn new() -> Self {
        MemoryTracer::default()
    }

    /// Create a tracer that keeps only records at or above `level`.
    pub fn with_min_level(level: TraceLevel) -> Self {
        MemoryTracer {
            records: Vec::new(),
            min_level: Some(level),
        }
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over messages containing `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.message.contains(needle))
    }
}

impl Tracer for MemoryTracer {
    fn trace(&mut self, time: SimTime, level: TraceLevel, message: &str) {
        if let Some(min) = self.min_level {
            if level < min {
                return;
            }
        }
        self.records.push(TraceRecord {
            time,
            level,
            message: message.to_owned(),
        });
    }

    fn enabled(&self, level: TraceLevel) -> bool {
        match self.min_level {
            Some(min) => level >= min,
            None => true,
        }
    }
}

/// A tracer that prints to standard error, prefixed with the simulated time.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrTracer {
    /// Minimum level to print.
    pub min_level: TraceLevel,
}

impl Tracer for StderrTracer {
    fn trace(&mut self, time: SimTime, level: TraceLevel, message: &str) {
        if level >= self.min_level {
            eprintln!("[{time} {level}] {message}");
        }
    }

    fn enabled(&self, level: TraceLevel) -> bool {
        level >= self.min_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_tracer_captures_in_order() {
        let mut t = MemoryTracer::new();
        t.trace(SimTime::from_secs(1), TraceLevel::Info, "swap at R3");
        t.trace(SimTime::from_secs(2), TraceLevel::Warn, "starved consumer");
        assert_eq!(t.len(), 2);
        assert_eq!(t.records[0].message, "swap at R3");
        assert_eq!(t.records[1].level, TraceLevel::Warn);
        assert_eq!(t.matching("swap").count(), 1);
    }

    #[test]
    fn memory_tracer_min_level_filters() {
        let mut t = MemoryTracer::with_min_level(TraceLevel::Warn);
        assert!(!t.enabled(TraceLevel::Debug));
        assert!(t.enabled(TraceLevel::Warn));
        t.trace(SimTime::ZERO, TraceLevel::Debug, "noise");
        t.trace(SimTime::ZERO, TraceLevel::Warn, "signal");
        assert_eq!(t.len(), 1);
        assert_eq!(t.records[0].message, "signal");
    }

    #[test]
    fn null_tracer_is_disabled() {
        let mut t = NullTracer;
        assert!(!t.enabled(TraceLevel::Warn));
        t.trace(SimTime::ZERO, TraceLevel::Info, "dropped");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Debug < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Warn);
        assert_eq!(format!("{}", TraceLevel::Info), "INFO");
    }
}
