//! The event queue.
//!
//! Events are ordered by `(time, sequence)`, where `sequence` is a
//! monotonically increasing insertion counter. Breaking ties by insertion
//! order (rather than arbitrarily, as a plain binary heap would) is what
//! makes simulations deterministic and therefore reproducible: two events
//! scheduled for the same instant are always delivered in the order they
//! were scheduled.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event that has been scheduled for delivery.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub time: SimTime,
    /// Insertion sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` for delivery at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            event,
        });
    }

    /// Schedule `event` for delivery `after` the given `now`.
    pub fn schedule_after(&mut self, now: SimTime, after: SimDuration, event: E) {
        self.schedule_at(now.saturating_add(after), event);
    }

    /// Remove and return the next event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (the sequence counter keeps advancing so that
    /// determinism is preserved if the queue is reused).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule_at(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_adds_to_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(5), SimDuration::from_millis(250), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5_250_000_000)));
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::ZERO, 1);
        q.schedule_at(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 10);
        q.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule_at(SimTime::from_secs(5), 5);
        q.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 5);
        assert_eq!(q.pop().unwrap().event, 10);
        assert!(q.pop().is_none());
    }
}
