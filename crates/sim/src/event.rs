//! The event queue.
//!
//! Events are ordered by `(time, sequence)`, where `sequence` is a
//! monotonically increasing insertion counter. Breaking ties by insertion
//! order (rather than arbitrarily, as a plain binary heap would) is what
//! makes simulations deterministic and therefore reproducible: two events
//! scheduled for the same instant are always delivered in the order they
//! were scheduled.
//!
//! Two backends implement that contract with identical observable behavior
//! (see [`QueueBackend`]): a hierarchical **timing wheel** (the default —
//! near-O(1) schedule/pop for the dense short-horizon event churn the
//! network simulation generates) and the classic **binary heap** (O(log n),
//! kept as a fallback and as the differential-testing oracle). Because both
//! order by the full `(time, seq)` key, the pop sequence — and therefore
//! every simulation byte — is the same whichever backend runs.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event that has been scheduled for delivery.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Delivery time.
    pub time: SimTime,
    /// Insertion sequence number (tie-breaker; unique per queue).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which data structure backs an [`EventQueue`].
///
/// Selected per queue at construction: explicitly via
/// [`EventQueue::with_backend`], or for [`EventQueue::new`] from the
/// `QNET_EVENT_QUEUE` environment variable (`wheel` / `heap`; unset or
/// unrecognized means the default wheel). Both backends deliver the exact
/// same `(time, seq)` pop order, so switching backends never changes
/// simulation output — only its speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueBackend {
    /// Hierarchical timing wheel / calendar queue (default).
    #[default]
    TimingWheel,
    /// Plain binary heap over `(time, seq)` — the historical
    /// implementation, kept as a runtime fallback and differential oracle.
    BinaryHeap,
}

/// Log₂ of the wheel bucket width in nanoseconds: 2²⁰ ns ≈ 1.05 ms, on the
/// order of the entanglement-generation and swap-scan intervals that
/// dominate the hot path.
const WHEEL_TICK_SHIFT: u32 = 20;
/// Number of wheel buckets (power of two): span ≈ 4096 × 1.05 ms ≈ 4.3 s.
/// Events beyond the span overflow into an auxiliary heap and migrate into
/// the wheel as it rotates forward.
const WHEEL_BUCKETS: usize = 4096;

/// The wheel tick an absolute time falls into.
fn wheel_tick(t: SimTime) -> u64 {
    t.as_nanos() >> WHEEL_TICK_SHIFT
}

/// Timing-wheel state. Invariant (restored by `settle` after every
/// mutation): whenever the wheel holds any event, `active` is non-empty and
/// contains every event with tick < `active_tick` — including the global
/// minimum — so `peek`/`pop` are straight heap operations on `active`.
///
/// * `active` — min-heap of imminent events (tick < `active_tick`).
/// * `buckets[τ % WHEEL_BUCKETS]` — unsorted events at tick τ for
///   τ ∈ [`active_tick`, `active_tick + WHEEL_BUCKETS`).
/// * `overflow` — min-heap of events at or beyond the wheel span.
#[derive(Debug, Clone)]
struct TimingWheel<E> {
    active: BinaryHeap<ScheduledEvent<E>>,
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// Total events across all `buckets`.
    bucket_len: usize,
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// First tick not yet migrated into `active`.
    active_tick: u64,
}

impl<E> TimingWheel<E> {
    fn new() -> Self {
        TimingWheel {
            active: BinaryHeap::new(),
            buckets: std::iter::repeat_with(Vec::new)
                .take(WHEEL_BUCKETS)
                .collect(),
            bucket_len: 0,
            overflow: BinaryHeap::new(),
            active_tick: 0,
        }
    }

    fn len(&self) -> usize {
        self.active.len() + self.bucket_len + self.overflow.len()
    }

    fn push(&mut self, ev: ScheduledEvent<E>) {
        let tick = wheel_tick(ev.time);
        if tick < self.active_tick {
            // Imminent (or in the past relative to the wheel cursor):
            // straight into the sorted heap the pops come from.
            self.active.push(ev);
        } else if tick - self.active_tick < WHEEL_BUCKETS as u64 {
            self.buckets[(tick % WHEEL_BUCKETS as u64) as usize].push(ev);
            self.bucket_len += 1;
        } else {
            self.overflow.push(ev);
        }
        self.settle();
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.active.pop();
        self.settle();
        ev
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.active.peek().map(|s| s.time)
    }

    /// Rotate the wheel forward until `active` again holds the global
    /// minimum (or the wheel is empty). Each step migrates one tick's
    /// bucket, merged with any overflow events on that exact tick, into a
    /// freshly heapified `active`; when every bucket is empty the cursor
    /// jumps straight to the earliest overflow tick instead of sweeping
    /// empty buckets.
    fn settle(&mut self) {
        while self.active.is_empty() && (self.bucket_len > 0 || !self.overflow.is_empty()) {
            if self.bucket_len == 0 {
                // Only overflow events remain: jump to the earliest.
                let t = self.overflow.peek().expect("overflow non-empty").time;
                self.active_tick = wheel_tick(t);
            }
            let slot = (self.active_tick % WHEEL_BUCKETS as u64) as usize;
            let mut batch = std::mem::take(&mut self.buckets[slot]);
            self.bucket_len -= batch.len();
            while self
                .overflow
                .peek()
                .is_some_and(|ev| wheel_tick(ev.time) == self.active_tick)
            {
                batch.push(self.overflow.pop().expect("peeked"));
            }
            self.active_tick += 1;
            if !batch.is_empty() {
                // O(batch) heapify — cheaper than per-event pushes.
                self.active = BinaryHeap::from(batch);
            }
        }
    }

    fn clear(&mut self) {
        self.active.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.bucket_len = 0;
        self.overflow.clear();
    }
}

/// The two interchangeable queue implementations.
#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeap<ScheduledEvent<E>>),
    Wheel(TimingWheel<E>),
}

/// A deterministic future-event list.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Backend requested by the `QNET_EVENT_QUEUE` environment variable
/// (consulted per queue creation so tests can toggle it): `heap` /
/// `binary-heap` / `binary_heap` select the heap, anything else (including
/// unset) the timing wheel.
fn backend_from_env() -> QueueBackend {
    match std::env::var("QNET_EVENT_QUEUE") {
        Ok(v) if matches!(v.as_str(), "heap" | "binary-heap" | "binary_heap") => {
            QueueBackend::BinaryHeap
        }
        _ => QueueBackend::TimingWheel,
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the environment-selected backend (the
    /// timing wheel unless `QNET_EVENT_QUEUE=heap`).
    pub fn new() -> Self {
        Self::with_backend(backend_from_env())
    }

    /// Create an empty queue on an explicitly chosen backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::TimingWheel => Backend::Wheel(TimingWheel::new()),
                QueueBackend::BinaryHeap => Backend::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            Backend::Heap(_) => QueueBackend::BinaryHeap,
            Backend::Wheel(_) => QueueBackend::TimingWheel,
        }
    }

    /// Schedule `event` for delivery at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let scheduled = ScheduledEvent {
            time: at,
            seq,
            event,
        };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(scheduled),
            Backend::Wheel(wheel) => wheel.push(scheduled),
        }
    }

    /// Schedule `event` for delivery `after` the given `now`.
    pub fn schedule_after(&mut self, now: SimTime, after: SimDuration, event: E) {
        self.schedule_at(now.saturating_add(after), event);
    }

    /// Remove and return the next event in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop(),
            Backend::Wheel(wheel) => wheel.pop(),
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|s| s.time),
            Backend::Wheel(wheel) => wheel.peek_time(),
        }
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (the sequence counter keeps advancing so that
    /// determinism is preserved if the queue is reused).
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Wheel(wheel) => wheel.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run the same scenario on both backends.
    fn on_both_backends(scenario: impl Fn(&mut EventQueue<u64>)) {
        for backend in [QueueBackend::TimingWheel, QueueBackend::BinaryHeap] {
            let mut q = EventQueue::with_backend(backend);
            scenario(&mut q);
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        on_both_backends(|q| {
            for i in 0..100u64 {
                q.schedule_at(SimTime::from_secs(7), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn schedule_after_adds_to_now() {
        let mut q = EventQueue::new();
        q.schedule_after(SimTime::from_secs(5), SimDuration::from_millis(250), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5_250_000_000)));
    }

    #[test]
    fn counters_and_clear() {
        on_both_backends(|q| {
            assert!(q.is_empty());
            q.schedule_at(SimTime::ZERO, 1);
            q.schedule_at(SimTime::ZERO, 2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.scheduled_total(), 2);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.scheduled_total(), 2);
        });
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        on_both_backends(|q| {
            q.schedule_at(SimTime::from_secs(10), 10);
            q.schedule_at(SimTime::from_secs(1), 1);
            assert_eq!(q.pop().unwrap().event, 1);
            q.schedule_at(SimTime::from_secs(5), 5);
            q.schedule_at(SimTime::from_secs(2), 2);
            assert_eq!(q.pop().unwrap().event, 2);
            assert_eq!(q.pop().unwrap().event, 5);
            assert_eq!(q.pop().unwrap().event, 10);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn env_var_selects_backend_per_creation() {
        // Serialize with other env-reading tests via the lock below.
        std::env::set_var("QNET_EVENT_QUEUE", "heap");
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::BinaryHeap);
        std::env::set_var("QNET_EVENT_QUEUE", "wheel");
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::TimingWheel);
        std::env::remove_var("QNET_EVENT_QUEUE");
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::TimingWheel);
    }

    /// Deterministic pseudo-random stream (SplitMix-style) for the
    /// differential tests — no RNG dependency inside the unit tests.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The differential proof the backend swap rests on: identical
    /// schedule/pop interleavings produce identical `(time, seq, event)`
    /// streams on both backends, across time scales that exercise the
    /// wheel's active heap, its buckets, its overflow heap, and the
    /// overflow→bucket migration as the wheel rotates.
    #[test]
    fn wheel_and_heap_pop_identical_streams() {
        for (scale, seed) in [(1_u64, 1), (1 << 18, 2), (1 << 22, 3), (1 << 30, 4)] {
            let mut wheel = EventQueue::with_backend(QueueBackend::TimingWheel);
            let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
            let mut state = seed;
            let mut now = 0u64;
            for round in 0..2_000u64 {
                let r = mix(&mut state);
                // Mixed workload: mostly schedules near `now`, some far
                // ahead, occasional bursts of exact ties, interleaved pops.
                match r % 10 {
                    0..=5 => {
                        let at = now + (r >> 32) % (64 * scale);
                        wheel.schedule_at(SimTime::from_nanos(at), round);
                        heap.schedule_at(SimTime::from_nanos(at), round);
                    }
                    6 => {
                        let at = now + (r >> 32) % (1 << 34); // far future
                        wheel.schedule_at(SimTime::from_nanos(at), round);
                        heap.schedule_at(SimTime::from_nanos(at), round);
                    }
                    7 => {
                        let at = now + scale;
                        for k in 0..4 {
                            wheel.schedule_at(SimTime::from_nanos(at), round * 10 + k);
                            heap.schedule_at(SimTime::from_nanos(at), round * 10 + k);
                        }
                    }
                    _ => {
                        let (a, b) = (wheel.pop(), heap.pop());
                        match (&a, &b) {
                            (Some(x), Some(y)) => {
                                assert_eq!(
                                    (x.time, x.seq, x.event),
                                    (y.time, y.seq, y.event),
                                    "diverged at round {round} scale {scale}"
                                );
                                now = now.max(x.time.as_nanos());
                            }
                            (None, None) => {}
                            _ => panic!("one backend empty, the other not"),
                        }
                    }
                }
                assert_eq!(wheel.len(), heap.len());
                assert_eq!(wheel.peek_time(), heap.peek_time());
            }
            // Drain: remaining streams must match to the last event.
            loop {
                match (wheel.pop(), heap.pop()) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.seq), (y.time, y.seq));
                    }
                    (None, None) => break,
                    _ => panic!("backends disagree on emptiness"),
                }
            }
        }
    }

    #[test]
    fn wheel_survives_far_future_and_reuse_after_clear() {
        let mut q = EventQueue::with_backend(QueueBackend::TimingWheel);
        // Far beyond the wheel span: overflow path.
        q.schedule_at(SimTime::from_secs(1_000_000), 1);
        q.schedule_at(SimTime::from_nanos(5), 0);
        assert_eq!(q.pop().unwrap().event, 0);
        assert_eq!(q.pop().unwrap().event, 1);
        // Reuse after clear, scheduling "in the past" relative to the
        // wheel cursor: still delivered, in order.
        q.schedule_at(SimTime::from_secs(2_000_000), 9);
        q.clear();
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_secs(3), 3);
        q.schedule_at(SimTime::from_secs(1), 2);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
        assert!(q.pop().is_none());
    }
}
