//! Statistics collectors.
//!
//! Small, allocation-light collectors used by simulation models to accumulate
//! results: simple counters, running mean/variance (Welford), time-weighted
//! averages (for quantities like "Bell pairs in flight"), and fixed-bin
//! histograms.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }
    /// Increment by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }
    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Running mean and variance using Welford's algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Sample variance (unbiased; 0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (Chan et al.'s parallel
    /// Welford combination), as if every observation of `other` had been
    /// recorded here. Used by sweep aggregation to fold per-worker partial
    /// statistics without replaying samples.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / total);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean (`1.96·σ/√n`). `None` below two observations, where the
    /// sample deviation is undefined.
    pub fn ci95_half_width(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(1.96 * self.std_dev() / (self.n as f64).sqrt())
        }
    }
    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }
    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// Nearest-rank percentile over an already **sorted** sample slice:
/// the smallest element whose rank is at least `⌈q·n⌉` (clamped to the
/// sample range). `None` when empty. The single quantile definition shared
/// by run-level metrics and campaign aggregation, so the two cannot
/// diverge.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Number of mantissa bits retained per octave by [`LogQuantileSketch`]:
/// 2⁷ = 128 sub-buckets per power of two, giving a guaranteed relative
/// value error of at most 2⁻⁸ ≈ 0.4% for in-range magnitudes.
const SKETCH_SUB_BITS: u32 = 7;
/// Right-shift turning an `f64` bit pattern into a (exponent, sub-bucket)
/// key: keeps the sign-free 11 exponent bits plus the top
/// [`SKETCH_SUB_BITS`] mantissa bits.
const SKETCH_SHIFT: u32 = 52 - SKETCH_SUB_BITS;
/// Smallest biased exponent the sketch resolves (2⁻⁴⁰ ≈ 10⁻¹²; smaller
/// magnitudes clamp into the bottom bucket). Sojourn times are ≥ 1 ns =
/// 10⁻⁹ s and fidelities are 𝒪(1), so nothing the simulator records
/// underflows this in practice.
const SKETCH_MIN_EXP: u64 = 1023 - 40;
/// Largest biased exponent the sketch resolves (2⁵⁰ ≈ 10¹⁵; larger
/// magnitudes and infinities clamp into the top bucket).
const SKETCH_MAX_EXP: u64 = 1023 + 50;
const SKETCH_KEY_MIN: u64 = SKETCH_MIN_EXP << SKETCH_SUB_BITS;
/// Dense bucket count per sign: 91 octaves × 128 sub-buckets (≈ 91 KiB of
/// `u64` counts when materialized).
const SKETCH_BUCKETS: usize = (((SKETCH_MAX_EXP - SKETCH_MIN_EXP) as usize) + 1) << SKETCH_SUB_BITS;

/// A deterministic, fixed-memory quantile sketch over `f64` samples:
/// log-spaced buckets addressed straight from the floating-point bit
/// pattern (HDR-histogram style), so recording is two shifts and an add and
/// the memory ceiling is a compile-time constant regardless of stream
/// length.
///
/// Guarantees:
///
/// * **Value error, not rank error** — any reported quantile is the
///   midpoint of a bucket whose width is ≤ 2⁻⁷ of its magnitude, so the
///   result differs from the exact nearest-rank answer by a relative
///   error of at most 2⁻⁸ for magnitudes in `[2⁻⁴⁰, 2⁵⁰]` (clamped
///   outside; exact zero is tracked separately and reported exactly).
///   Results are additionally clamped into the observed `[min, max]`.
/// * **Determinism** — identical streams produce identical bucket counts
///   and therefore bit-identical quantiles.
/// * **Merge-order invariance** — [`LogQuantileSketch::merge`] adds bucket
///   counts, which is exactly commutative and associative (`u64` adds),
///   so sharded aggregation never depends on worker interleaving.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogQuantileSketch {
    /// Counts for positive magnitudes, lazily materialized on first use.
    pos: Vec<u64>,
    /// Counts for negative magnitudes (mirror indexing on `-x`), lazily
    /// materialized: sojourn/fidelity streams never touch it.
    neg: Vec<u64>,
    /// Exact zeros (`±0.0`).
    zeros: u64,
    total: u64,
    min: f64,
    max: f64,
}

/// Bucket index for a strictly positive, non-NaN magnitude.
fn sketch_index(x: f64) -> usize {
    let key = x.to_bits() >> SKETCH_SHIFT;
    (key.saturating_sub(SKETCH_KEY_MIN) as usize).min(SKETCH_BUCKETS - 1)
}

/// Midpoint of bucket `idx` (positive side).
fn sketch_midpoint(idx: usize) -> f64 {
    let key = SKETCH_KEY_MIN + idx as u64;
    let lo = f64::from_bits(key << SKETCH_SHIFT);
    let hi = f64::from_bits((key + 1) << SKETCH_SHIFT);
    0.5 * (lo + hi)
}

impl LogQuantileSketch {
    /// New, empty sketch. Allocation is deferred until the first sample of
    /// each sign, so an empty sketch costs a few words.
    pub fn new() -> Self {
        LogQuantileSketch {
            pos: Vec::new(),
            neg: Vec::new(),
            zeros: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN samples are ignored (they have no place
    /// in an order statistic); infinities clamp into the extreme buckets.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x == 0.0 {
            self.zeros += 1;
        } else if x > 0.0 {
            if self.pos.is_empty() {
                self.pos = vec![0; SKETCH_BUCKETS];
            }
            self.pos[sketch_index(x.min(f64::MAX))] += 1;
        } else {
            if self.neg.is_empty() {
                self.neg = vec![0; SKETCH_BUCKETS];
            }
            self.neg[sketch_index((-x).min(f64::MAX))] += 1;
        }
        self.total += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded (non-NaN) observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Nearest-rank quantile (same rank convention as
    /// [`percentile_of_sorted`]): the bucket holding the sample of rank
    /// `⌈q·n⌉`, reported as its midpoint clamped into `[min, max]`.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        // Ascending value order: most-negative → zero → most-positive.
        for idx in (0..self.neg.len()).rev() {
            cum += self.neg[idx];
            if cum >= target {
                return Some((-sketch_midpoint(idx)).clamp(self.min, self.max));
            }
        }
        cum += self.zeros;
        if cum >= target {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for (idx, &c) in self.pos.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(sketch_midpoint(idx).clamp(self.min, self.max));
            }
        }
        // Counts always sum to `total`; unreachable, but stay total.
        Some(self.max)
    }

    /// Merge another sketch into this one by adding bucket counts — exactly
    /// commutative and associative, so sharded/parallel aggregation is
    /// merge-order invariant.
    pub fn merge(&mut self, other: &LogQuantileSketch) {
        if other.total == 0 {
            return;
        }
        if !other.pos.is_empty() {
            if self.pos.is_empty() {
                self.pos = other.pos.clone();
            } else {
                for (a, b) in self.pos.iter_mut().zip(&other.pos) {
                    *a += b;
                }
            }
        }
        if !other.neg.is_empty() {
            if self.neg.is_empty() {
                self.neg = other.neg.clone();
            } else {
                for (a, b) in self.neg.iter_mut().zip(&other.neg) {
                    *a += b;
                }
            }
        }
        self.zeros += other.zeros;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Default number of samples [`StreamingQuantiles`] buffers exactly before
/// switching to the fixed-memory sketch. Chosen above every golden
/// workload's request count (the largest committed golden runs well under
/// 10⁴ requests) so existing reports stay byte-identical, while 10⁵–10⁷
/// request runs hold flat memory.
pub const DEFAULT_EXACT_SAMPLE_THRESHOLD: usize = 65_536;

/// Quantile estimation that is **exact below a threshold and fixed-memory
/// above it**: samples are buffered verbatim (and quantiles computed by
/// [`percentile_of_sorted`], bit-identical to the historical code path)
/// until the buffer would exceed the threshold, at which point the buffer
/// folds into a [`LogQuantileSketch`] and per-sample storage stops.
///
/// Merge semantics (used by sharded campaign aggregation) are defined for
/// every mode pairing:
///
/// * **exact ⊕ exact** — concatenates buffers; converts to a sketch only
///   if the union exceeds the threshold. Quantiles sort first, so the
///   result is independent of merge order.
/// * **exact ⊕ sketch / sketch ⊕ exact** — the exact side's samples fold
///   into the sketch; bucket counts don't care about recording order.
/// * **sketch ⊕ sketch** — bucket-count addition (commutative,
///   associative).
///
/// In all cases the merged result is the same as if every underlying
/// sample had been recorded into one collector (exactly when staying
/// exact; within the sketch's documented error once sketching).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamingQuantiles {
    /// Buffering raw samples; quantiles are exact nearest-rank.
    Exact {
        /// The raw samples, in arrival order.
        samples: Vec<f64>,
        /// Buffer size beyond which the collector converts to a sketch.
        threshold: usize,
    },
    /// Fixed-memory mode; quantiles come from the log-bucketed sketch.
    Sketch(LogQuantileSketch),
}

impl Default for StreamingQuantiles {
    fn default() -> Self {
        StreamingQuantiles::new(DEFAULT_EXACT_SAMPLE_THRESHOLD)
    }
}

impl StreamingQuantiles {
    /// New collector that stays exact up to `threshold` samples. A
    /// threshold of 0 sketches from the first sample.
    pub fn new(threshold: usize) -> Self {
        StreamingQuantiles::Exact {
            samples: Vec::new(),
            threshold,
        }
    }

    /// Record one observation, converting to the sketch when the exact
    /// buffer would exceed its threshold.
    pub fn record(&mut self, x: f64) {
        match self {
            StreamingQuantiles::Exact { samples, threshold } => {
                if samples.len() >= *threshold {
                    let mut sketch = LogQuantileSketch::new();
                    for &s in samples.iter() {
                        sketch.record(s);
                    }
                    sketch.record(x);
                    *self = StreamingQuantiles::Sketch(sketch);
                } else {
                    samples.push(x);
                }
            }
            StreamingQuantiles::Sketch(sketch) => sketch.record(x),
        }
    }

    /// Number of recorded observations. (In sketch mode NaN samples are
    /// dropped rather than counted.)
    pub fn count(&self) -> u64 {
        match self {
            StreamingQuantiles::Exact { samples, .. } => samples.len() as u64,
            StreamingQuantiles::Sketch(sketch) => sketch.count(),
        }
    }

    /// True once the collector has given up per-sample storage. Surfaced
    /// in reports so readers know whether quantiles are exact or
    /// sketch-approximated.
    pub fn is_sketch(&self) -> bool {
        matches!(self, StreamingQuantiles::Sketch(_))
    }

    /// The raw sample buffer while still exact (`None` after conversion).
    pub fn exact_samples(&self) -> Option<&[f64]> {
        match self {
            StreamingQuantiles::Exact { samples, .. } => Some(samples),
            StreamingQuantiles::Sketch(_) => None,
        }
    }

    /// Nearest-rank quantile: exact (via [`percentile_of_sorted`]) while
    /// buffering, sketch-approximated after conversion. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            StreamingQuantiles::Exact { samples, .. } => {
                let mut sorted = samples.clone();
                sorted.sort_by(f64::total_cmp);
                percentile_of_sorted(&sorted, q)
            }
            StreamingQuantiles::Sketch(sketch) => sketch.quantile(q),
        }
    }

    /// Convert to (or expose) the sketch form, folding buffered samples.
    fn to_sketch(&self) -> LogQuantileSketch {
        match self {
            StreamingQuantiles::Exact { samples, .. } => {
                let mut sketch = LogQuantileSketch::new();
                for &s in samples.iter() {
                    sketch.record(s);
                }
                sketch
            }
            StreamingQuantiles::Sketch(sketch) => sketch.clone(),
        }
    }

    /// Merge another collector into this one (see the type docs for the
    /// per-mode semantics).
    pub fn merge(&mut self, other: &StreamingQuantiles) {
        match (&mut *self, other) {
            (
                StreamingQuantiles::Exact { samples, threshold },
                StreamingQuantiles::Exact {
                    samples: other_samples,
                    ..
                },
            ) => {
                if samples.len() + other_samples.len() > *threshold {
                    let mut sketch = LogQuantileSketch::new();
                    for &s in samples.iter().chain(other_samples) {
                        sketch.record(s);
                    }
                    *self = StreamingQuantiles::Sketch(sketch);
                } else {
                    samples.extend_from_slice(other_samples);
                }
            }
            (StreamingQuantiles::Exact { .. }, StreamingQuantiles::Sketch(other_sketch)) => {
                let mut sketch = self.to_sketch();
                sketch.merge(other_sketch);
                *self = StreamingQuantiles::Sketch(sketch);
            }
            (StreamingQuantiles::Sketch(sketch), StreamingQuantiles::Exact { samples, .. }) => {
                for &s in samples.iter() {
                    sketch.record(s);
                }
            }
            (StreamingQuantiles::Sketch(sketch), StreamingQuantiles::Sketch(other_sketch)) => {
                sketch.merge(other_sketch);
            }
        }
    }
}

/// Time-weighted average of a piecewise-constant quantity (e.g. a buffer
/// occupancy). Call [`TimeWeighted::update`] whenever the value changes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking with the given initial value at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record that the tracked quantity takes value `new_value` from time
    /// `now` onwards.
    pub fn update(&mut self, now: SimTime, new_value: f64) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * dt;
        self.value = new_value;
        self.last_change = now;
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.value * tail) / total
    }
}

/// A histogram with uniform-width bins over `[lo, hi)`; observations outside
/// the range are clamped into the first/last bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let nbins = self.bins.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            nbins - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * nbins as f64) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate quantile (0 ≤ q ≤ 1) using bin midpoints. Returns `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + width * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.25), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.5), Some(2.0));
        assert_eq!(percentile_of_sorted(&xs, 1.0), Some(4.0));
        assert_eq!(percentile_of_sorted(&[], 0.5), None);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic data set is 4; the unbiased
        // sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut all = RunningStats::new();
        for &x in &xs {
            all.record(x);
        }
        // Split at every point and merge the halves.
        for split in 0..=xs.len() {
            let (left, right) = xs.split_at(split);
            let mut a = RunningStats::new();
            let mut b = RunningStats::new();
            left.iter().for_each(|&x| a.record(x));
            right.iter().for_each(|&x| b.record(x));
            a.merge(&b);
            assert_eq!(a.count(), all.count());
            assert!((a.mean() - all.mean()).abs() < 1e-12, "split {split}");
            assert!(
                (a.variance() - all.variance()).abs() < 1e-12,
                "split {split}"
            );
            assert_eq!(a.min(), all.min());
            assert_eq!(a.max(), all.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        a.record(5.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_with_empty_stays_empty() {
        let mut a = RunningStats::new();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.ci95_half_width(), None);
        // Still usable after the no-op merge: recording proceeds normally.
        a.record(7.0);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 7.0);
    }

    #[test]
    fn merge_empty_into_nonempty_and_back_are_bit_identical() {
        // empty⊕x and x⊕empty must both reproduce x exactly (merge takes
        // the copy/early-return paths, so this is bit-equality, not just
        // approximate equality).
        let mut x = RunningStats::new();
        for v in [1.5, -2.25, 8.0] {
            x.record(v);
        }
        let mut left = RunningStats::new();
        left.merge(&x);
        let mut right = x;
        right.merge(&RunningStats::new());
        for merged in [left, right] {
            assert_eq!(merged.count(), x.count());
            assert_eq!(merged.mean().to_bits(), x.mean().to_bits());
            assert_eq!(merged.variance().to_bits(), x.variance().to_bits());
            assert_eq!(merged.min(), x.min());
            assert_eq!(merged.max(), x.max());
        }
    }

    #[test]
    fn merge_single_sample_sides() {
        // singleton ⊕ singleton: two-sample statistics in closed form.
        let mut a = RunningStats::new();
        a.record(2.0);
        let mut b = RunningStats::new();
        b.record(6.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        assert!((a.variance() - 8.0).abs() < 1e-12); // ((2-4)² + (6-4)²)/1
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(6.0));
        assert!(a.ci95_half_width().unwrap() > 0.0);

        // singleton ⊕ many and many ⊕ singleton agree with sequential
        // recording to floating-point tolerance.
        let xs = [4.0, 5.0, 7.0, 9.0];
        let mut seq = RunningStats::new();
        seq.record(2.0);
        xs.iter().for_each(|&x| seq.record(x));
        let mut single = RunningStats::new();
        single.record(2.0);
        let mut many = RunningStats::new();
        xs.iter().for_each(|&x| many.record(x));
        let mut single_many = single;
        single_many.merge(&many);
        let mut many_single = many;
        many_single.merge(&single);
        for merged in [single_many, many_single] {
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-12);
            assert!((merged.variance() - seq.variance()).abs() < 1e-12);
            assert_eq!(merged.min(), seq.min());
            assert_eq!(merged.max(), seq.max());
        }
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let mut a = RunningStats::new();
        a.record(1.0);
        assert!(a.ci95_half_width().is_none());
        a.record(3.0);
        let wide = a.ci95_half_width().unwrap();
        for _ in 0..98 {
            a.record(1.0);
            a.record(3.0);
        }
        let narrow = a.ci95_half_width().unwrap();
        assert!(narrow < wide);
        assert!(narrow > 0.0);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 10.0); // value 0 for 10s
        tw.update(SimTime::from_secs(20), 0.0); // value 10 for 10s
        let mean = tw.mean(SimTime::from_secs(20));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
        // Holding the last value for another 20s drags the mean down to 2.5.
        let mean2 = tw.mean(SimTime::from_secs(40));
        assert!((mean2 - 2.5).abs() < 1e-9, "mean2 {mean2}");
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_at_start_returns_current() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.total(), 100);
        assert!(h.bins().iter().all(|&c| c == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(20.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    /// Relative-error bound the sketch documents: 2⁻⁸, plus float slop.
    const SKETCH_REL_ERR: f64 = 1.0 / 256.0 + 1e-12;

    fn assert_close(sketch: f64, exact: f64) {
        let tol = exact.abs() * SKETCH_REL_ERR;
        assert!(
            (sketch - exact).abs() <= tol,
            "sketch {sketch} vs exact {exact} (tol {tol})"
        );
    }

    #[test]
    fn sketch_quantiles_track_exact_nearest_rank() {
        let mut sketch = LogQuantileSketch::new();
        let mut samples: Vec<f64> = Vec::new();
        // Deterministic pseudo-stream spanning several octaves.
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1e-6 + (x >> 11) as f64 / (1u64 << 53) as f64 * 1e3;
            sketch.record(v);
            samples.push(v);
        }
        samples.sort_by(f64::total_cmp);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_close(
                sketch.quantile(q).unwrap(),
                percentile_of_sorted(&samples, q).unwrap(),
            );
        }
        assert_eq!(sketch.count(), 10_000);
        assert_eq!(sketch.min(), samples.first().copied());
        assert_eq!(sketch.max(), samples.last().copied());
    }

    #[test]
    fn sketch_handles_zeros_negatives_and_constants() {
        let mut s = LogQuantileSketch::new();
        for _ in 0..5 {
            s.record(0.0);
        }
        assert_eq!(s.quantile(0.5), Some(0.0));

        let mut c = LogQuantileSketch::new();
        for _ in 0..100 {
            c.record(3.25);
        }
        // Constant stream: every quantile is the constant (min/max clamp
        // makes this exact, not just within relative error).
        assert_eq!(c.quantile(0.0), Some(3.25));
        assert_eq!(c.quantile(0.5), Some(3.25));
        assert_eq!(c.quantile(1.0), Some(3.25));

        let mut n = LogQuantileSketch::new();
        for v in [-4.0, -2.0, -1.0, 1.0, 2.0] {
            n.record(v);
        }
        assert_close(n.quantile(0.2).unwrap(), -4.0);
        assert_close(n.quantile(0.6).unwrap(), -1.0);
        assert_close(n.quantile(1.0).unwrap(), 2.0);
    }

    #[test]
    fn sketch_ignores_nan_and_clamps_infinities() {
        let mut s = LogQuantileSketch::new();
        s.record(f64::NAN);
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
        s.record(1.0);
        s.record(f64::INFINITY);
        assert_eq!(s.count(), 2);
        assert!(s.quantile(1.0).unwrap().is_finite() || s.max() == Some(f64::INFINITY));
    }

    #[test]
    fn sketch_merge_is_commutative_and_matches_union() {
        let (mut a, mut b, mut union) = (
            LogQuantileSketch::new(),
            LogQuantileSketch::new(),
            LogQuantileSketch::new(),
        );
        for i in 0..500 {
            let v = 0.5 + i as f64;
            a.record(v);
            union.record(v);
        }
        for i in 0..300 {
            let v = 1e4 + 3.0 * i as f64;
            b.record(v);
            union.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, union);
    }

    #[test]
    fn streaming_quantiles_stay_exact_below_threshold() {
        let mut sq = StreamingQuantiles::new(8);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            sq.record(v);
        }
        assert!(!sq.is_sketch());
        assert_eq!(sq.exact_samples().unwrap().len(), 5);
        // Bit-identical to the historical sorted-buffer path.
        assert_eq!(sq.quantile(0.5), Some(3.0));
        assert_eq!(sq.quantile(1.0), Some(5.0));
    }

    #[test]
    fn streaming_quantiles_convert_at_threshold() {
        let mut sq = StreamingQuantiles::new(4);
        for i in 0..4 {
            sq.record(i as f64 + 1.0);
        }
        assert!(!sq.is_sketch(), "exactly at threshold stays exact");
        sq.record(5.0);
        assert!(sq.is_sketch(), "threshold + 1 converts");
        assert_eq!(sq.count(), 5);
        assert!(sq.exact_samples().is_none());
        assert_close(sq.quantile(0.5).unwrap(), 3.0);
    }

    #[test]
    fn streaming_merge_semantics_all_mode_pairs() {
        let exact = |vals: &[f64], threshold: usize| {
            let mut sq = StreamingQuantiles::new(threshold);
            vals.iter().for_each(|&v| sq.record(v));
            sq
        };

        // exact ⊕ exact, union under threshold: still exact.
        let mut a = exact(&[1.0, 2.0], 10);
        a.merge(&exact(&[3.0, 4.0], 10));
        assert!(!a.is_sketch());
        assert_eq!(a.count(), 4);
        assert_eq!(a.quantile(0.5), Some(2.0));

        // exact ⊕ exact, union over threshold: converts.
        let mut b = exact(&[1.0, 2.0, 3.0], 4);
        b.merge(&exact(&[4.0, 5.0], 4));
        assert!(b.is_sketch());
        assert_eq!(b.count(), 5);
        assert_close(b.quantile(0.5).unwrap(), 3.0);

        // sketch ⊕ exact folds the samples in.
        let mut c = exact(&(0..20).map(f64::from).collect::<Vec<_>>(), 4);
        assert!(c.is_sketch());
        c.merge(&exact(&[100.0, 200.0], 10));
        assert_eq!(c.count(), 22);

        // exact ⊕ sketch converts the exact side.
        let mut d = exact(&[1.0, 2.0], 10);
        d.merge(&c);
        assert!(d.is_sketch());
        assert_eq!(d.count(), 24);

        // sketch ⊕ sketch adds counts; merge order does not matter.
        let s1 = exact(&(0..10).map(|i| f64::from(i) + 0.5).collect::<Vec<_>>(), 2);
        let s2 = exact(
            &(0..10)
                .map(|i| f64::from(i) * 7.0 + 1.0)
                .collect::<Vec<_>>(),
            2,
        );
        let mut m12 = s1.clone();
        m12.merge(&s2);
        let mut m21 = s2.clone();
        m21.merge(&s1);
        assert_eq!(m12, m21);
        assert_eq!(m12.count(), 20);
    }

    #[test]
    fn streaming_merge_matches_single_collector_within_error() {
        // Shard a stream three ways, merge in two different orders, and
        // compare against one collector that saw everything.
        let stream: Vec<f64> = (0..3_000)
            .map(|i| 1e-3 * f64::from(i % 997) + 1e-4)
            .collect();
        let mut whole = StreamingQuantiles::new(100);
        stream.iter().for_each(|&v| whole.record(v));
        let shards: Vec<StreamingQuantiles> = stream
            .chunks(1_000)
            .map(|chunk| {
                let mut sq = StreamingQuantiles::new(100);
                chunk.iter().for_each(|&v| sq.record(v));
                sq
            })
            .collect();
        let mut fwd = shards[0].clone();
        fwd.merge(&shards[1]);
        fwd.merge(&shards[2]);
        let mut rev = shards[2].clone();
        rev.merge(&shards[1]);
        rev.merge(&shards[0]);
        assert_eq!(fwd, rev, "merge order must not matter");
        assert_eq!(fwd.count(), whole.count());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_close(fwd.quantile(q).unwrap(), whole.quantile(q).unwrap());
        }
    }
}
