//! Statistics collectors.
//!
//! Small, allocation-light collectors used by simulation models to accumulate
//! results: simple counters, running mean/variance (Welford), time-weighted
//! averages (for quantities like "Bell pairs in flight"), and fixed-bin
//! histograms.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }
    /// Increment by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }
    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.count
    }
}

/// Running mean and variance using Welford's algorithm.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// New, empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Sample variance (unbiased; 0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (Chan et al.'s parallel
    /// Welford combination), as if every observation of `other` had been
    /// recorded here. Used by sweep aggregation to fold per-worker partial
    /// statistics without replaying samples.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / total);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Half-width of the normal-approximation 95% confidence interval on
    /// the mean (`1.96·σ/√n`). `None` below two observations, where the
    /// sample deviation is undefined.
    pub fn ci95_half_width(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(1.96 * self.std_dev() / (self.n as f64).sqrt())
        }
    }
    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }
    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

/// Nearest-rank percentile over an already **sorted** sample slice:
/// the smallest element whose rank is at least `⌈q·n⌉` (clamped to the
/// sample range). `None` when empty. The single quantile definition shared
/// by run-level metrics and campaign aggregation, so the two cannot
/// diverge.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Time-weighted average of a piecewise-constant quantity (e.g. a buffer
/// occupancy). Call [`TimeWeighted::update`] whenever the value changes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking with the given initial value at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            last_change: start,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Record that the tracked quantity takes value `new_value` from time
    /// `now` onwards.
    pub fn update(&mut self, now: SimTime, new_value: f64) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * dt;
        self.value = new_value;
        self.last_change = now;
    }

    /// The current value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The time-weighted mean over `[start, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.saturating_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.value;
        }
        let tail = now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + self.value * tail) / total
    }
}

/// A histogram with uniform-width bins over `[lo, hi)`; observations outside
/// the range are clamped into the first/last bin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let nbins = self.bins.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            nbins - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * nbins as f64) as usize).min(nbins - 1)
        };
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate quantile (0 ≤ q ≤ 1) using bin midpoints. Returns `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + width * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.25), Some(1.0));
        assert_eq!(percentile_of_sorted(&xs, 0.5), Some(2.0));
        assert_eq!(percentile_of_sorted(&xs, 1.0), Some(4.0));
        assert_eq!(percentile_of_sorted(&[], 0.5), None);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stats_known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic data set is 4; the unbiased
        // sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut all = RunningStats::new();
        for &x in &xs {
            all.record(x);
        }
        // Split at every point and merge the halves.
        for split in 0..=xs.len() {
            let (left, right) = xs.split_at(split);
            let mut a = RunningStats::new();
            let mut b = RunningStats::new();
            left.iter().for_each(|&x| a.record(x));
            right.iter().for_each(|&x| b.record(x));
            a.merge(&b);
            assert_eq!(a.count(), all.count());
            assert!((a.mean() - all.mean()).abs() < 1e-12, "split {split}");
            assert!(
                (a.variance() - all.variance()).abs() < 1e-12,
                "split {split}"
            );
            assert_eq!(a.min(), all.min());
            assert_eq!(a.max(), all.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.record(3.0);
        a.record(5.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_with_empty_stays_empty() {
        let mut a = RunningStats::new();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.ci95_half_width(), None);
        // Still usable after the no-op merge: recording proceeds normally.
        a.record(7.0);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 7.0);
    }

    #[test]
    fn merge_empty_into_nonempty_and_back_are_bit_identical() {
        // empty⊕x and x⊕empty must both reproduce x exactly (merge takes
        // the copy/early-return paths, so this is bit-equality, not just
        // approximate equality).
        let mut x = RunningStats::new();
        for v in [1.5, -2.25, 8.0] {
            x.record(v);
        }
        let mut left = RunningStats::new();
        left.merge(&x);
        let mut right = x;
        right.merge(&RunningStats::new());
        for merged in [left, right] {
            assert_eq!(merged.count(), x.count());
            assert_eq!(merged.mean().to_bits(), x.mean().to_bits());
            assert_eq!(merged.variance().to_bits(), x.variance().to_bits());
            assert_eq!(merged.min(), x.min());
            assert_eq!(merged.max(), x.max());
        }
    }

    #[test]
    fn merge_single_sample_sides() {
        // singleton ⊕ singleton: two-sample statistics in closed form.
        let mut a = RunningStats::new();
        a.record(2.0);
        let mut b = RunningStats::new();
        b.record(6.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 4.0).abs() < 1e-12);
        assert!((a.variance() - 8.0).abs() < 1e-12); // ((2-4)² + (6-4)²)/1
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(6.0));
        assert!(a.ci95_half_width().unwrap() > 0.0);

        // singleton ⊕ many and many ⊕ singleton agree with sequential
        // recording to floating-point tolerance.
        let xs = [4.0, 5.0, 7.0, 9.0];
        let mut seq = RunningStats::new();
        seq.record(2.0);
        xs.iter().for_each(|&x| seq.record(x));
        let mut single = RunningStats::new();
        single.record(2.0);
        let mut many = RunningStats::new();
        xs.iter().for_each(|&x| many.record(x));
        let mut single_many = single;
        single_many.merge(&many);
        let mut many_single = many;
        many_single.merge(&single);
        for merged in [single_many, many_single] {
            assert_eq!(merged.count(), seq.count());
            assert!((merged.mean() - seq.mean()).abs() < 1e-12);
            assert!((merged.variance() - seq.variance()).abs() < 1e-12);
            assert_eq!(merged.min(), seq.min());
            assert_eq!(merged.max(), seq.max());
        }
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let mut a = RunningStats::new();
        a.record(1.0);
        assert!(a.ci95_half_width().is_none());
        a.record(3.0);
        let wide = a.ci95_half_width().unwrap();
        for _ in 0..98 {
            a.record(1.0);
            a.record(3.0);
        }
        let narrow = a.ci95_half_width().unwrap();
        assert!(narrow < wide);
        assert!(narrow > 0.0);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(10), 10.0); // value 0 for 10s
        tw.update(SimTime::from_secs(20), 0.0); // value 10 for 10s
        let mean = tw.mean(SimTime::from_secs(20));
        assert!((mean - 5.0).abs() < 1e-9, "mean {mean}");
        // Holding the last value for another 20s drags the mean down to 2.5.
        let mean2 = tw.mean(SimTime::from_secs(40));
        assert!((mean2 - 2.5).abs() < 1e-9, "mean2 {mean2}");
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_at_start_returns_current() {
        let tw = TimeWeighted::new(SimTime::from_secs(5), 3.0);
        assert_eq!(tw.mean(SimTime::from_secs(5)), 3.0);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.total(), 100);
        assert!(h.bins().iter().all(|&c| c == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 4.5).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(20.0);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn histogram_empty_quantile_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}
