//! # qnet-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the simulation substrate used by the rest of the
//! `qnet` workspace. It is a classic event-queue discrete-event simulator
//! (DES): a monotonically increasing simulated clock, a priority queue of
//! scheduled events, and a handler that mutates model state and schedules
//! further events.
//!
//! Design goals (in the spirit of the smoltcp guidance followed by this
//! workspace):
//!
//! * **Simplicity and robustness** — no async runtime, no threads inside the
//!   engine, no unsafe code. The simulation is CPU-bound and single-threaded;
//!   parallelism, when wanted, is obtained by running independent replicas on
//!   separate threads (see `qnet-bench`).
//! * **Determinism** — all randomness flows through [`SimRng`], a seeded
//!   ChaCha-based generator with labelled sub-streams. Two runs with the same
//!   seed produce bit-identical event orderings; ties in event time are broken
//!   by insertion sequence number.
//! * **Observability** — lightweight statistics collectors
//!   ([`stats::Counter`], [`stats::TimeWeighted`], [`stats::Histogram`]) and a
//!   pluggable [`trace::Tracer`].
//!
//! ## Quick example
//!
//! ```
//! use qnet_sim::{Engine, EventQueue, SimDuration, SimTime, World};
//!
//! #[derive(Debug, Clone, PartialEq, Eq)]
//! enum Ev { Ping(u32) }
//!
//! struct Model { pings: u32 }
//!
//! impl World for Model {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
//!         let Ev::Ping(n) = ev;
//!         self.pings += 1;
//!         if n < 10 {
//!             queue.schedule_after(now, SimDuration::from_millis(1), Ev::Ping(n + 1));
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Model { pings: 0 });
//! engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Ping(0));
//! engine.run_to_completion();
//! assert_eq!(engine.world().pings, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod process;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Engine, RunResult, StopCondition, World};
pub use event::{EventQueue, ScheduledEvent};
pub use process::{FixedIntervalProcess, PoissonProcess};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
