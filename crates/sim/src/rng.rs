//! Deterministic random-number generation.
//!
//! All stochastic behaviour in the workspace flows through [`SimRng`], a thin
//! wrapper over `rand_chacha::ChaCha12Rng`. ChaCha is used (instead of
//! `rand::rngs::StdRng`) because its output is documented to be stable across
//! `rand` releases and platforms, which is what makes experiments
//! reproducible from a single `u64` seed.
//!
//! Independent *streams* can be derived from a root seed with
//! [`SimRng::derive`], so that, e.g., the generation process and the workload
//! generator consume randomness independently: adding draws to one stream
//! never perturbs the other.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A seeded, splittable random number generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The root seed this generator (or its ancestor) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream labelled by `label`.
    ///
    /// The derived stream's seed is a hash of `(root seed, label)`, so the
    /// same `(seed, label)` always yields the same stream, and different
    /// labels yield streams that are independent for all practical purposes.
    pub fn derive(&self, label: &str) -> SimRng {
        let derived = splitmix_combine(self.seed, fxhash_str(label));
        SimRng::new(derived)
    }

    /// Derive an independent stream labelled by a label and an index
    /// (convenient for per-node or per-edge streams).
    pub fn derive_indexed(&self, label: &str, index: u64) -> SimRng {
        let derived = splitmix_combine(splitmix_combine(self.seed, fxhash_str(label)), index);
        SimRng::new(derived)
    }

    /// Sample an exponentially distributed duration (in seconds) with the
    /// given rate (events per second). Returns `f64::INFINITY` if the rate is
    /// not positive.
    pub fn sample_exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse-CDF sampling; `gen::<f64>()` is in [0, 1), so `1 - u` is in
        // (0, 1] and the log is finite.
        let u: f64 = self.inner.gen();
        -(1.0 - u).ln() / rate
    }

    /// Uniformly sample an index in `0..n`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Sample `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Uniform f64 in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a slice, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64-style mixing of two 64-bit values into one.
fn splitmix_combine(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, stable string hash (FxHash-style) used only for stream labels.
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h = h.rotate_left(5) ^ (b as u64);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let root = SimRng::new(7);
        let mut g1 = root.derive("generation");
        let mut g2 = root.derive("generation");
        let mut w = root.derive("workload");
        assert_eq!(g1.next_u64(), g2.next_u64());
        // Streams with different labels should diverge immediately with
        // overwhelming probability.
        assert_ne!(g1.next_u64(), w.next_u64());
        let mut i0 = root.derive_indexed("edge", 0);
        let mut i1 = root.derive_indexed("edge", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn exponential_sampling_mean_is_close() {
        let mut rng = SimRng::new(123);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.sample_exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut rng = SimRng::new(5);
        assert!(rng.sample_exponential(0.0).is_infinite());
        assert!(rng.sample_exponential(-3.0).is_infinite());
    }

    #[test]
    fn chance_edges() {
        let mut rng = SimRng::new(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_single() {
        let mut rng = SimRng::new(13);
        let empty: &[u32] = &[];
        assert!(rng.choose(empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn index_covers_range() {
        let mut rng = SimRng::new(17);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
