//! The simulation engine: clock + event queue + model.
//!
//! A model implements [`World`]; the [`Engine`] owns the model, the clock and
//! the [`EventQueue`] and drives event delivery until a [`StopCondition`] is
//! met or the queue drains.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A simulation model.
///
/// The engine calls [`World::handle`] for every delivered event; the handler
/// mutates model state and may schedule further events on the queue it is
/// handed. The handler must never schedule events in the past (this is
/// checked by the engine and treated as a programming error).
pub trait World {
    /// The event type delivered to this world.
    type Event;

    /// Handle one event occurring at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a [`Engine::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// The event queue drained completely.
    QueueExhausted,
    /// The configured horizon time was reached.
    HorizonReached,
    /// The configured event budget was exhausted.
    EventBudgetExhausted,
}

/// Limits on a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct StopCondition {
    /// Do not deliver events scheduled strictly after this time.
    pub horizon: SimTime,
    /// Deliver at most this many events.
    pub max_events: u64,
}

impl Default for StopCondition {
    fn default() -> Self {
        StopCondition {
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }
}

impl StopCondition {
    /// Stop after the given horizon time.
    pub fn at_horizon(horizon: SimTime) -> Self {
        StopCondition {
            horizon,
            ..Default::default()
        }
    }

    /// Stop after delivering `max_events` events.
    pub fn after_events(max_events: u64) -> Self {
        StopCondition {
            max_events,
            ..Default::default()
        }
    }
}

/// The discrete-event simulation engine.
#[derive(Debug)]
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: SimTime,
    delivered: u64,
}

impl<W: World> Engine<W> {
    /// Create an engine around a model, with an empty queue and the clock at
    /// time zero.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the model.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Mutable access to the event queue (e.g. for seeding initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Immutable access to the event queue.
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Consume the engine and return the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Run until the stop condition triggers or the queue drains.
    pub fn run(&mut self, stop: StopCondition) -> RunResult {
        let mut budget = stop.max_events;
        loop {
            if budget == 0 {
                return RunResult::EventBudgetExhausted;
            }
            let Some(next_time) = self.queue.peek_time() else {
                return RunResult::QueueExhausted;
            };
            if next_time > stop.horizon {
                // Leave the event in the queue so a later run() with a larger
                // horizon can still deliver it; advance the clock to the
                // horizon so time-weighted statistics cover the full window.
                self.now = stop.horizon;
                return RunResult::HorizonReached;
            }
            let scheduled = self.queue.pop().expect("peeked event must pop");
            debug_assert!(
                scheduled.time >= self.now,
                "event scheduled in the past: {} < {}",
                scheduled.time,
                self.now
            );
            self.now = scheduled.time;
            self.world
                .handle(self.now, scheduled.event, &mut self.queue);
            self.delivered += 1;
            budget -= 1;
        }
    }

    /// Run until the event queue is empty (no horizon, no event budget).
    pub fn run_to_completion(&mut self) -> RunResult {
        self.run(StopCondition::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick,
        Stop,
    }

    struct Clockwork {
        ticks: u32,
        last_seen: SimTime,
        stopped: bool,
    }

    impl World for Clockwork {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
            assert!(now >= self.last_seen, "time went backwards");
            self.last_seen = now;
            match ev {
                Ev::Tick => {
                    self.ticks += 1;
                    if self.ticks < 5 {
                        queue.schedule_after(now, SimDuration::from_secs(1), Ev::Tick);
                    } else {
                        queue.schedule_after(now, SimDuration::from_secs(1), Ev::Stop);
                    }
                }
                Ev::Stop => self.stopped = true,
            }
        }
    }

    fn fresh() -> Engine<Clockwork> {
        let mut e = Engine::new(Clockwork {
            ticks: 0,
            last_seen: SimTime::ZERO,
            stopped: false,
        });
        e.queue_mut().schedule_at(SimTime::ZERO, Ev::Tick);
        e
    }

    #[test]
    fn runs_to_completion() {
        let mut e = fresh();
        let r = e.run_to_completion();
        assert_eq!(r, RunResult::QueueExhausted);
        assert_eq!(e.world().ticks, 5);
        assert!(e.world().stopped);
        assert_eq!(e.now(), SimTime::from_secs(5));
        assert_eq!(e.delivered(), 6);
    }

    #[test]
    fn horizon_stops_early_and_can_resume() {
        let mut e = fresh();
        let r = e.run(StopCondition::at_horizon(SimTime::from_millis(2500)));
        assert_eq!(r, RunResult::HorizonReached);
        assert_eq!(e.world().ticks, 3); // ticks at t=0,1,2
        assert_eq!(e.now(), SimTime::from_millis(2500));
        // Resume with no horizon: the remaining events still fire.
        let r2 = e.run_to_completion();
        assert_eq!(r2, RunResult::QueueExhausted);
        assert_eq!(e.world().ticks, 5);
        assert!(e.world().stopped);
    }

    #[test]
    fn event_budget_stops_early() {
        let mut e = fresh();
        let r = e.run(StopCondition::after_events(2));
        assert_eq!(r, RunResult::EventBudgetExhausted);
        assert_eq!(e.delivered(), 2);
        assert_eq!(e.world().ticks, 2);
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut e = Engine::new(Clockwork {
            ticks: 0,
            last_seen: SimTime::ZERO,
            stopped: false,
        });
        assert_eq!(e.run_to_completion(), RunResult::QueueExhausted);
        assert_eq!(e.delivered(), 0);
        assert_eq!(e.now(), SimTime::ZERO);
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut e = fresh();
        e.run_to_completion();
        let w = e.into_world();
        assert_eq!(w.ticks, 5);
    }
}
