//! Simulated time.
//!
//! Time is represented as an unsigned 64-bit count of **nanoseconds** since
//! the start of the simulation. At nanosecond resolution a `u64` covers more
//! than 580 simulated years, far beyond any experiment in this workspace.
//! Using an integer (rather than `f64`) keeps event ordering exact and makes
//! simulations bit-reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
///
/// `SimDuration` is an alias-like wrapper with the same representation as
/// [`SimTime`]; the two are kept distinct so that the type system catches
/// accidental "time + time" arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds of simulated time.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from a floating-point number of seconds, rounding to the
    /// nearest nanosecond. NaN and negative inputs saturate to zero; values
    /// too large to represent (including +∞) saturate to [`SimTime::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = (secs * 1e9).round();
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from floating-point seconds (rounded to nanoseconds;
    /// negative / non-finite saturates to zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(SimTime::from_secs_f64(secs).0)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a floating-point factor, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(11).as_nanos(), 11);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn float_conversion_is_close() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn float_conversion_saturates() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(500));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_nanos(3);
        assert_eq!(u.as_nanos(), 3);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(
            SimDuration::from_millis(10).saturating_mul(4),
            SimDuration::from_millis(40)
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_nanos(1) > SimDuration::ZERO);
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
