//! Arrival processes.
//!
//! Simulation models frequently need "this happens repeatedly at rate λ"
//! (Poisson) or "this happens every Δt" (fixed interval). These helpers
//! produce the next arrival time; the model is responsible for scheduling the
//! corresponding event.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A Poisson (memoryless) arrival process with a fixed rate in events per
/// simulated second.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate_per_sec: f64,
}

impl PoissonProcess {
    /// Create a process with the given rate (events per second). Rates that
    /// are zero or negative yield a process that never fires.
    pub fn new(rate_per_sec: f64) -> Self {
        PoissonProcess { rate_per_sec }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// True if this process never fires.
    pub fn is_silent(&self) -> bool {
        self.rate_per_sec <= 0.0
    }

    /// Sample the next arrival strictly after `now`, or `None` if the process
    /// never fires.
    pub fn next_arrival(&self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        if self.is_silent() {
            return None;
        }
        let gap = rng.sample_exponential(self.rate_per_sec);
        if !gap.is_finite() {
            return None;
        }
        Some(now.saturating_add(SimDuration::from_secs_f64(gap)))
    }
}

/// A deterministic fixed-interval arrival process.
#[derive(Debug, Clone)]
pub struct FixedIntervalProcess {
    interval: SimDuration,
}

impl FixedIntervalProcess {
    /// Create a process that fires every `interval`. A zero interval is
    /// permitted but the caller must take care to avoid infinite same-time
    /// loops.
    pub fn new(interval: SimDuration) -> Self {
        FixedIntervalProcess { interval }
    }

    /// Create from a rate in events per second (interval = 1/rate).
    /// A non-positive rate yields a process that never fires.
    pub fn from_rate(rate_per_sec: f64) -> Self {
        if rate_per_sec <= 0.0 {
            FixedIntervalProcess {
                interval: SimDuration::MAX,
            }
        } else {
            FixedIntervalProcess {
                interval: SimDuration::from_secs_f64(1.0 / rate_per_sec),
            }
        }
    }

    /// The interval between arrivals.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The next arrival after `now`, or `None` if the process never fires.
    pub fn next_arrival(&self, now: SimTime) -> Option<SimTime> {
        if self.interval == SimDuration::MAX {
            return None;
        }
        Some(now.saturating_add(self.interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival_matches_rate() {
        let p = PoissonProcess::new(10.0);
        let mut rng = SimRng::new(99);
        let mut now = SimTime::ZERO;
        let n = 10_000;
        for _ in 0..n {
            now = p.next_arrival(now, &mut rng).unwrap();
        }
        let mean_gap = now.as_secs_f64() / n as f64;
        assert!((mean_gap - 0.1).abs() < 0.01, "mean gap {mean_gap}");
    }

    #[test]
    fn poisson_silent_never_fires() {
        let p = PoissonProcess::new(0.0);
        let mut rng = SimRng::new(1);
        assert!(p.is_silent());
        assert!(p.next_arrival(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn poisson_arrivals_strictly_progress() {
        let p = PoissonProcess::new(1000.0);
        let mut rng = SimRng::new(3);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let next = p.next_arrival(now, &mut rng).unwrap();
            assert!(next >= now);
            now = next;
        }
    }

    #[test]
    fn fixed_interval_is_exact() {
        let p = FixedIntervalProcess::new(SimDuration::from_millis(5));
        let t1 = p.next_arrival(SimTime::ZERO).unwrap();
        let t2 = p.next_arrival(t1).unwrap();
        assert_eq!(t1, SimTime::from_millis(5));
        assert_eq!(t2, SimTime::from_millis(10));
    }

    #[test]
    fn fixed_interval_from_rate() {
        let p = FixedIntervalProcess::from_rate(4.0);
        assert_eq!(p.interval(), SimDuration::from_millis(250));
        let silent = FixedIntervalProcess::from_rate(0.0);
        assert!(silent.next_arrival(SimTime::ZERO).is_none());
    }
}
