//! Property-based tests of the simulation substrate: event ordering, time
//! arithmetic, RNG stream stability and statistics collectors.

use proptest::prelude::*;
use qnet_sim::event::EventQueue;
use qnet_sim::rng::SimRng;
use qnet_sim::stats::{
    percentile_of_sorted, Histogram, LogQuantileSketch, RunningStats, StreamingQuantiles,
    TimeWeighted,
};
use qnet_sim::time::{SimDuration, SimTime};
use rand::RngCore;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order, and same-time events pop in insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_popped_time = None;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last_time);
            if Some(ev.time) == last_popped_time {
                // Same timestamp: insertion index must increase.
                prop_assert!(seen_at_time.last().is_none_or(|&p| p < ev.event));
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(ev.event);
            last_time = ev.time;
            last_popped_time = Some(ev.time);
        }
        prop_assert!(q.is_empty());
    }

    /// Popping returns exactly as many events as were scheduled.
    #[test]
    fn event_queue_conserves_events(times in proptest::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(SimTime::from_nanos(t), ());
        }
        let mut popped = 0usize;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(q.scheduled_total(), times.len() as u64);
    }

    /// Time arithmetic: (t + d) - t == d for values that do not overflow.
    #[test]
    fn time_addition_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
        prop_assert!(time.saturating_add(dur) >= time);
    }

    /// Float/second conversions agree to nanosecond precision for sane spans.
    #[test]
    fn time_float_round_trip(secs in 0.0f64..1.0e6) {
        let t = SimTime::from_secs_f64(secs);
        prop_assert!((t.as_secs_f64() - secs).abs() < 1e-6);
    }

    /// Identical seeds give identical streams; derived streams are stable.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let mut a = SimRng::new(seed).derive(&label);
        let mut b = SimRng::new(seed).derive(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Exponential samples are positive and finite for positive rates.
    #[test]
    fn exponential_samples_positive(seed in any::<u64>(), rate in 0.01f64..1000.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let x = rng.sample_exponential(rate);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), mut xs in proptest::collection::vec(0u32..1000, 0..64)) {
        let mut rng = SimRng::new(seed);
        let mut original = xs.clone();
        rng.shuffle(&mut xs);
        original.sort_unstable();
        xs.sort_unstable();
        prop_assert_eq!(original, xs);
    }

    /// Running statistics: the mean lies between the minimum and the maximum,
    /// and the variance is non-negative.
    #[test]
    fn running_stats_bounds(xs in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.record(x);
        }
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!(s.variance() >= -1e-9);
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(min <= max);
        prop_assert!(s.mean() >= min - 1e-6 && s.mean() <= max + 1e-6);
    }

    /// Shard-merge invariance: folding per-partition statistics left-to-right
    /// and merging them as a balanced tree must agree on every reported
    /// figure — exactly for counts/min/max, within a few ULPs for
    /// mean/variance (Chan's combination is not bit-associative), and to
    /// f64 bit-equality once rendered at the report's display precision —
    /// over random samples and random partition boundaries. This is the
    /// property that lets shard statistics recombine in any grouping.
    #[test]
    fn merge_order_never_changes_the_reported_statistics(
        xs in proptest::collection::vec(-1.0e3f64..1.0e3, 0..48),
        raw_cuts in proptest::collection::vec(0usize..48, 0..6),
    ) {
        // Random partition of xs into contiguous parts.
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|&c| c.min(xs.len())).collect();
        cuts.push(0);
        cuts.push(xs.len());
        cuts.sort_unstable();
        cuts.dedup();
        let parts: Vec<RunningStats> = cuts
            .windows(2)
            .map(|w| {
                let mut s = RunningStats::new();
                xs[w[0]..w[1]].iter().for_each(|&x| s.record(x));
                s
            })
            .collect();

        // Left fold over the parts, in order.
        let mut left_fold = RunningStats::new();
        for part in &parts {
            left_fold.merge(part);
        }
        // Balanced tree: pairwise-merge rounds until one remains.
        let mut round = parts.clone();
        while round.len() > 1 {
            round = round
                .chunks(2)
                .map(|pair| {
                    let mut merged = pair[0];
                    if let Some(right) = pair.get(1) {
                        merged.merge(right);
                    }
                    merged
                })
                .collect();
        }
        let tree = round.pop().unwrap_or_default();

        prop_assert_eq!(left_fold.count(), tree.count());
        prop_assert_eq!(left_fold.count(), xs.len() as u64);
        // Chan's combination is not bit-associative, so the two groupings
        // may differ in the last ~floating-point digit relative to the
        // sample scale — but never more.
        let scale = xs.iter().fold(1.0f64, |acc, &x| acc.max(x.abs()));
        prop_assert!(
            (left_fold.mean() - tree.mean()).abs() <= 1e-12 * scale,
            "means diverge beyond rounding: {} vs {}",
            left_fold.mean(),
            tree.mean()
        );
        prop_assert!(
            (left_fold.variance() - tree.variance()).abs() <= 1e-11 * scale * scale,
            "variances diverge beyond rounding: {} vs {}",
            left_fold.variance(),
            tree.variance()
        );
        // Bit-equality of the final report formatting: rendered at the
        // report's display precision, both groupings produce identical
        // strings. (Gated away from exact cancellation, where a tiny mean
        // is pure rounding noise with no stable digits to format.)
        if left_fold.mean().abs() > 1e-9 * scale {
            prop_assert_eq!(
                format!("{:.6e}", left_fold.mean()),
                format!("{:.6e}", tree.mean())
            );
        }
        prop_assert_eq!(
            format!("{:.6e}", left_fold.variance()),
            format!("{:.6e}", tree.variance())
        );
        // Min/max and counts merge exactly in any order.
        prop_assert_eq!(left_fold.min(), tree.min());
        prop_assert_eq!(left_fold.max(), tree.max());
    }

    /// Histogram: total count equals the number of observations and the
    /// quantiles are within the configured range and monotone.
    #[test]
    fn histogram_quantiles_monotone(xs in proptest::collection::vec(-10.0f64..10.0, 1..300)) {
        let mut h = Histogram::new(-5.0, 5.0, 20);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let q25 = h.quantile(0.25).unwrap();
        let q50 = h.quantile(0.5).unwrap();
        let q75 = h.quantile(0.75).unwrap();
        prop_assert!(q25 <= q50 + 1e-9 && q50 <= q75 + 1e-9);
        prop_assert!((-5.0..=5.0).contains(&q25) && (-5.0..=5.0).contains(&q75));
    }

    /// Time-weighted mean of a piecewise-constant signal is bounded by the
    /// extremes of the recorded values.
    #[test]
    fn time_weighted_mean_bounded(values in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, values[0]);
        let mut t = SimTime::ZERO;
        for (i, &v) in values.iter().enumerate().skip(1) {
            t = SimTime::from_secs(i as u64);
            tw.update(t, v);
        }
        let end = t + SimDuration::from_secs(1);
        let mean = tw.mean(end);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }
}

/// Documented sketch error: relative value error ≤ 2⁻⁸ for in-range
/// magnitudes, plus float slop.
const SKETCH_REL_ERR: f64 = 1.0 / 256.0 + 1e-12;

/// Assert a sketch quantile is within the documented relative error of the
/// exact nearest-rank quantile over the same samples.
fn check_quantiles(sketch: &LogQuantileSketch, samples: &[f64]) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        let approx = sketch.quantile(q).unwrap();
        let exact = percentile_of_sorted(&sorted, q).unwrap();
        let tol = exact.abs() * SKETCH_REL_ERR;
        prop_assert!(
            (approx - exact).abs() <= tol,
            "q={q}: sketch {approx} vs exact {exact} (tol {tol})"
        );
    }
}

fn sketch_of(samples: &[f64]) -> LogQuantileSketch {
    let mut s = LogQuantileSketch::new();
    samples.iter().for_each(|&v| s.record(v));
    s
}

proptest! {
    /// p50/p95/p99 stay within the documented relative error of the exact
    /// nearest-rank answer on random streams.
    #[test]
    fn sketch_tracks_exact_on_random_streams(
        xs in proptest::collection::vec(1e-6f64..1e6, 1..500)
    ) {
        check_quantiles(&sketch_of(&xs), &xs);
    }

    /// Adversarial stream: already sorted ascending (worst case for
    /// single-pass estimators such as P²; harmless for bucket counts).
    #[test]
    fn sketch_tracks_exact_on_sorted_streams(
        xs in proptest::collection::vec(1e-3f64..1e3, 1..500)
    ) {
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        check_quantiles(&sketch_of(&sorted), &sorted);
    }

    /// Adversarial stream: a single repeated constant. Min/max clamping
    /// makes every quantile exactly the constant.
    #[test]
    fn sketch_is_exact_on_constant_streams(v in 1e-6f64..1e6, n in 1usize..400) {
        let xs = vec![v; n];
        let s = sketch_of(&xs);
        for q in [0.0, 0.5, 0.99, 1.0] {
            prop_assert_eq!(s.quantile(q), Some(v));
        }
    }

    /// Adversarial stream: bimodal with widely separated modes — quantiles
    /// must snap to the correct mode, never interpolate between them.
    #[test]
    fn sketch_tracks_exact_on_bimodal_streams(
        lo in proptest::collection::vec(1e-3f64..1e-2, 1..200),
        hi in proptest::collection::vec(1e3f64..1e4, 1..200),
        interleave in any::<bool>(),
    ) {
        let xs: Vec<f64> = if interleave {
            lo.iter().copied().chain(hi.iter().copied()).collect()
        } else {
            hi.iter().chain(lo.iter()).copied().collect()
        };
        check_quantiles(&sketch_of(&xs), &xs);
    }

    /// Merge-order invariance for sharded aggregation: folding shard
    /// sketches in any order yields identical bucket state, and the merged
    /// quantiles match a collector that saw the whole stream.
    #[test]
    fn sketch_merge_is_order_invariant(
        shards in proptest::collection::vec(
            proptest::collection::vec(1e-4f64..1e4, 1..80), 2..6),
        seed in any::<u64>(),
    ) {
        let sketches: Vec<LogQuantileSketch> =
            shards.iter().map(|s| sketch_of(s)).collect();
        let mut fwd = LogQuantileSketch::new();
        sketches.iter().for_each(|s| fwd.merge(s));
        // A deterministic pseudo-random permutation of the merge order.
        let mut order: Vec<usize> = (0..sketches.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut perm = LogQuantileSketch::new();
        order.iter().for_each(|&i| perm.merge(&sketches[i]));
        prop_assert_eq!(&fwd, &perm);

        let all: Vec<f64> = shards.concat();
        prop_assert_eq!(&fwd, &sketch_of(&all));
        check_quantiles(&fwd, &all);
    }

    /// StreamingQuantiles is bit-exact below its threshold and within the
    /// sketch error above it; conversion happens exactly past the
    /// threshold.
    #[test]
    fn streaming_quantiles_exact_then_sketch(
        xs in proptest::collection::vec(1e-3f64..1e3, 1..300),
        threshold in 1usize..100,
    ) {
        let mut sq = StreamingQuantiles::new(threshold);
        xs.iter().for_each(|&v| sq.record(v));
        prop_assert_eq!(sq.is_sketch(), xs.len() > threshold);
        prop_assert_eq!(sq.count(), xs.len() as u64);
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let got = sq.quantile(q).unwrap();
            let exact = percentile_of_sorted(&sorted, q).unwrap();
            if sq.is_sketch() {
                let tol = exact.abs() * SKETCH_REL_ERR;
                prop_assert!((got - exact).abs() <= tol, "q={q}: {got} vs {exact}");
            } else {
                prop_assert_eq!(got.to_bits(), exact.to_bits(), "exact mode must be bit-identical");
            }
        }
    }
}
