//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! is written against the raw `proc_macro` API (no `syn`/`quote`). It parses
//! the subset of Rust item grammar the workspace uses — plain structs
//! (named, tuple, unit), plain enums (unit / tuple / struct variants), and
//! at most simple type generics like `<T>` — and emits impls of the local
//! `serde` shim's `Serialize`/`Deserialize` traits, following serde's
//! conventions: named structs become JSON objects, newtype structs are
//! transparent, tuple structs/variants become arrays, and enums use the
//! externally-tagged representation.
//!
//! `#[serde(...)]` attributes are not supported (none are used in this
//! workspace); unsupported shapes fail the build with a clear message
//! rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    /// Bare generic type parameter names (e.g. `["T"]`).
    generics: Vec<String>,
    body: Body,
}

#[derive(Debug)]
enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the local serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input).expect("serde_derive: unsupported item shape");
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

/// Derive the local serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input).expect("serde_derive: unsupported item shape");
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Option<Item> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos)? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    pos += 1;

    let name = match tokens.get(pos)? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    pos += 1;

    let generics = parse_generics(&tokens, &mut pos);

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Some(Item {
                name,
                generics,
                body: Body::NamedStruct(parse_named_fields(g.stream())),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(Item {
                name,
                generics,
                body: Body::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Some(Item {
                name,
                generics,
                body: Body::UnitStruct,
            }),
            _ => None,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Some(Item {
                name,
                generics,
                body: Body::Enum(parse_variants(g.stream())),
            }),
            _ => None,
        },
        _ => None,
    }
}

/// Skip leading `#[...]` attributes (including doc comments) and any
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(*pos) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<T, U: Bound, ...>` into bare parameter names; advances past the
/// closing `>`. Lifetimes and const generics are rejected (unused in this
/// workspace).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *pos += 1,
        _ => return params,
    }
    let mut depth = 1usize;
    let mut expecting_param = true;
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    *pos += 1;
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expecting_param = false,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("serde_derive: lifetime generics are not supported")
            }
            TokenTree::Ident(id) if expecting_param && depth == 1 => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde_derive: const generics are not supported");
                }
                params.push(s);
                expecting_param = false;
            }
            _ => {}
        }
        *pos += 1;
    }
    params
}

/// Split a token stream on top-level commas (angle-bracket aware).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tok);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments.retain(|s| !s.is_empty());
    segments
}

/// Field names of a named-field body `{ a: T, pub b: U }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|segment| {
            let mut pos = 0;
            skip_attrs_and_vis(&segment, &mut pos);
            match segment.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Arity of a tuple body `(pub A, B<C>)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|segment| {
            let mut pos = 0;
            skip_attrs_and_vis(&segment, &mut pos);
            let name = match segment.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            pos += 1;
            let shape = match segment.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                None => VariantShape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("serde_derive: explicit discriminants are not supported")
                }
                other => panic!("serde_derive: unexpected variant shape {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|p| format!("{p}: ::serde::{trait_name}"))
            .collect();
        let args = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}> ",
            bounds.join(", "),
            item.name,
            args
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let ty = &item.name;
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(item, "Serialize"),
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get_field(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "if value.as_map().is_none() {{ return ::std::result::Result::Err(::serde::DeError::expected(\"{ty} object\", value)); }} \
                 ::std::result::Result::Ok({ty} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::from_value(value)?))")
        }
        Body::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::DeError::custom(\"{ty}: tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| ::serde::DeError::expected(\"{ty} array\", value))?; \
                 ::std::result::Result::Ok({ty}({}))",
                inits.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({ty})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::DeError::custom(\"{ty}::{vn}: tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"{ty}::{vn} array\", inner))?; ::std::result::Result::Ok({ty}::{vn}({})) }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(inner.get_field(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({ty}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{ \
                   ::serde::Value::Str(s) => match s.as_str() {{ \
                     {units} \
                     other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown {ty} variant {{other}}\"))), \
                   }}, \
                   ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                     let (tag, inner) = &entries[0]; \
                     match tag.as_str() {{ \
                       {datas} \
                       other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown {ty} variant {{other}}\"))), \
                     }} \
                   }}, \
                   _ => ::std::result::Result::Err(::serde::DeError::expected(\"{ty} variant\", value)), \
                 }}",
                units = unit_arms.join(" "),
                datas = data_arms.join(" "),
            )
        }
    };
    format!(
        "{header}{{ fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = impl_header(item, "Deserialize"),
    )
}
