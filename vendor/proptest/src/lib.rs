//! Offline vendored subset of `proptest`.
//!
//! Deterministic randomized property testing with the combinator surface
//! this workspace's property tests use: range strategies, tuple strategies,
//! `any::<T>()`, simple `"[a-z]{m,n}"` string patterns,
//! `proptest::collection::vec`, `prop_map` / `prop_filter` /
//! `prop_filter_map` / `prop_flat_map`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream proptest: no shrinking (failures report the
//! raw counterexample), and each test's random stream is seeded from the
//! test's name, so runs are fully reproducible. The case count defaults to
//! 64 and can be overridden with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG and case-count plumbing behind `proptest!`.

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a hash), so every test has its own
        /// reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of accepted cases each property runs (default 64, override
    /// with `PROPTEST_CASES`).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

use test_runner::TestRng;

/// A generator of values of an associated type. `sample` returns `None`
/// when a filter rejects the draw; the `proptest!` runner retries.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying a predicate.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Transform and filter in one step.
    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let outer = self.inner.sample(rng)?;
        (self.f)(outer).sample(rng)
    }
}

/// A reference-counted type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

trait DynStrategy<T> {
    fn dyn_sample(&self, rng: &mut TestRng) -> Option<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.dyn_sample(rng)
    }
}

/// Strategy yielding one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                Some((lo as i128 + v as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty range strategy");
        Some(self.start + rng.unit_f64() as f32 * (self.end - self.start))
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// String pattern strategy
// ---------------------------------------------------------------------------

/// `&str` acts as a string strategy for the simple pattern grammar
/// `[chars]{m,n}` (character classes with ranges, bounded repetition).
/// Anything that doesn't parse as that grammar is produced literally.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        match parse_charclass_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + (rng.below((hi - lo + 1) as u64) as usize);
                Some(
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect(),
                )
            }
            None => Some((*self).to_string()),
        }
    }
}

/// Parse `[a-z0-9_]{m,n}` into (alphabet, m, n).
fn parse_charclass_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let mut chars = Vec::new();
    let class_chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < class_chars.len() {
        if i + 2 < class_chars.len() && class_chars[i + 1] == '-' {
            let (a, b) = (class_chars[i], class_chars[i + 2]);
            if a as u32 > b as u32 {
                return None;
            }
            for c in a as u32..=b as u32 {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(class_chars[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        None
    } else {
        Some((chars, lo, hi))
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats only: tests treat NaN propagation as a separate
        // concern, mirroring proptest's default f64 strategy shape.
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Strategy over a type's full [`Arbitrary`] domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements specification: a fixed count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `case_count()` accepted
/// samples drawn deterministically from the test's name.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let proptest_cases = $crate::test_runner::case_count();
                let mut proptest_accepted = 0usize;
                let mut proptest_attempts = 0usize;
                while proptest_accepted < proptest_cases {
                    proptest_attempts += 1;
                    assert!(
                        proptest_attempts <= proptest_cases.saturating_mul(100),
                        "proptest (vendored): strategy rejected too many samples in {}",
                        stringify!($name),
                    );
                    $(
                        let $pat = match $crate::Strategy::sample(&($strat), &mut proptest_rng) {
                            Some(v) => v,
                            None => continue,
                        };
                    )*
                    proptest_accepted += 1;
                    $body
                }
            }
        )*
    };
}

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -5i64..5, f in 0.25f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..1.0).contains(&f));
        }

        /// Vectors respect their size range and element bounds.
        #[test]
        fn vecs_well_formed(xs in collection::vec(0u32..100, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        /// Tuple + filter-map composition works.
        #[test]
        fn filter_map_composes(pair in (0u32..100, 0u32..100).prop_filter_map("distinct", |(a, b)| if a == b { None } else { Some((a, b)) })) {
            prop_assert_ne!(pair.0, pair.1);
        }

        /// Flat-mapped strategies respect the outer draw.
        #[test]
        fn flat_map_composes(xs in (1usize..5).prop_flat_map(|n| collection::vec(0u64..10, n))) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
        }

        /// String patterns produce matching strings.
        #[test]
        fn string_pattern(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        /// prop_assume skips cases without failing.
        #[test]
        fn assume_skips(a in 0u32..10) {
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn charclass_parser() {
        let (chars, lo, hi) = super::parse_charclass_pattern("[a-c_]{2,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '_']);
        assert_eq!((lo, hi), (2, 4));
        assert!(super::parse_charclass_pattern("plain").is_none());
    }
}
