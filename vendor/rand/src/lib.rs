//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the workspace actually uses are re-implemented
//! here: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and the [`distributions::Standard`]
//! distribution. Algorithms follow the published `rand 0.8` conventions
//! (SplitMix64 seed expansion, 53-bit float conversion) so behaviour is
//! deterministic and sensible, though the exact streams are not guaranteed
//! to be bit-identical to upstream `rand`.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type carried by [`RngCore::try_fill_bytes`]. The vendored RNGs are
/// infallible, so this is never actually constructed by this workspace.
pub struct Error(());

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill (infallible for all vendored generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// convention as `rand 0.8`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The subset of `rand::distributions` the workspace uses.

    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over the full domain for
    /// integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits => uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u: f32 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` module so `rand::rngs::StdRng`-style paths resolve if ever
/// needed; `StdRng` here is a small fast SplitMix64 generator.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
