//! Offline vendored subset of `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the `criterion` API
//! this workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark runs a
//! short warm-up followed by a fixed number of timed iterations and prints
//! mean/min per-iteration times. No statistical analysis, plotting or
//! baseline storage — this exists so `cargo bench` works in an offline
//! build environment.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a parameter (`name/parameter` in reports).
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Runs closures and measures them.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time a routine with explicit batched setup (compatibility shim; runs
    /// setup outside the timed region).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass.
    let mut warm = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);

    let samples = sample_size.max(1);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iterations.max(1) as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "bench {label:<50} mean {:>12} min {:>12} ({} samples)",
        format_seconds(mean),
        format_seconds(min),
        per_iter.len()
    );
    append_json_record(label, mean, min, per_iter.len());
}

/// When `BENCH_JSON` names a file, every benchmark additionally appends one
/// machine-readable JSON line there (so committed baseline files like
/// `BENCH_campaign.json` can be regenerated with
/// `BENCH_JSON=path cargo bench …`).
fn append_json_record(label: &str, mean_s: f64, min_s: f64, samples: usize) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"bench\":\"{escaped}\",\"mean_s\":{mean_s:.9},\"min_s\":{min_s:.9},\"samples\":{samples}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append to BENCH_JSON={path}: {e}");
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Set the target measurement time (ignored by this shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set throughput reporting (ignored by this shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Throughput reporting hint (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Configure the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Compatibility no-op matching criterion's configuration API.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility no-op: report finalization.
    pub fn final_summary(&mut self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs >= 2);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("n", 3).to_string(), "n/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn bench_json_records_append() {
        let path = std::env::temp_dir().join(format!("criterion-shim-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BENCH_JSON", &path);
        append_json_record("g/one", 1.5e-3, 1.0e-3, 4);
        append_json_record("g/t\"wo", 2.0, 1.0, 1);
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\":\"g/one\""), "{text}");
        assert!(lines[0].contains("\"samples\":4"), "{text}");
        assert!(lines[1].contains("t\\\"wo"), "escaped quote: {text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn format_seconds_scales() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
