//! Offline vendored subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! serialization surface the workspace actually uses, built around a
//! JSON-shaped [`Value`] data model instead of serde's visitor machinery:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`] tree,
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`] tree,
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the vendored
//!   `serde_derive` proc-macro, following serde's externally-tagged enum
//!   representation and named-field struct maps,
//! * the companion vendored `serde_json` crate renders [`Value`] trees to
//!   JSON text and parses them back.
//!
//! The derive macros and trait methods are API-compatible with the
//! `use serde::{Serialize, Deserialize};` + `#[derive(...)]` idiom used
//! throughout the workspace. Formats beyond JSON, serde attributes, borrowed
//! deserialization and zero-copy are intentionally out of scope.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model all (de)serialization flows
/// through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, mirroring `serde_json`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion-ordered so output is deterministic.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `value["key"]` / `value[index]` access, returning `Null` on misses like
/// `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get_field(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_seq().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::I64(n) => (n as i128) == (*other as i128),
                    Value::U64(n) => (n as i128) == (*other as i128),
                    Value::F64(n) => n == (*other as f64),
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Construct from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// Standard "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeError::custom(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialize `self` into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // Null maps to NaN so the serializer's non-finite → null convention
        // round-trips structurally.
        if value.is_null() {
            return Ok(f64::NAN);
        }
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let v: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(v).map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let seq = value.as_seq().ok_or_else(|| DeError::expected("tuple", value))?;
                let mut it = seq.iter();
                Ok((
                    $({
                        let _ = $idx;
                        $name::from_value(it.next().ok_or_else(|| DeError::custom("tuple too short"))?)?
                    },)+
                ))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize + ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let xs = vec![1.0f64, 2.5];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
        let pair = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn option_null_round_trip() {
        let some = Some(5u64);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Map(vec![
            ("n".into(), Value::U64(9)),
            ("name".into(), Value::Str("x".into())),
        ]);
        assert_eq!(v["n"], 9);
        assert_eq!(v["name"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Null).is_err());
        let e = DeError::expected("u64", &Value::Str("s".into()));
        assert!(e.to_string().contains("expected u64"));
    }

    #[test]
    fn signed_unsigned_cross_views() {
        assert_eq!(Value::I64(5).as_u64(), Some(5));
        assert_eq!(Value::U64(5).as_i64(), Some(5));
        assert_eq!(Value::I64(-5).as_u64(), None);
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
    }
}
