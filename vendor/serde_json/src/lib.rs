//! Offline vendored subset of `serde_json`.
//!
//! Renders the local `serde` shim's [`Value`] trees to JSON text and parses
//! JSON text back into them. Supports exactly the surface the workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], and the [`Value`] re-export with `value["key"]` indexing.
//!
//! Conventions match `serde_json`: non-finite floats serialize as `null`,
//! strings are escaped per RFC 8259, and parsed integers prefer `u64`, then
//! `i64`, then `f64`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error produced by JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's shortest round-trip float formatting; force a
                // fractional part so the value re-parses as a float.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: since the input is a &str, the bytes
                    // are valid; collect the full sequence.
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(slice)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn parse_basic_document() {
        let v: Value =
            from_str(r#"{"a": [1, -2, 3.5], "b": null, "c": "x", "d": {"e": true}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert!(v["b"].is_null());
        assert_eq!(v["c"], "x");
        assert_eq!(v["d"]["e"], true);
    }

    #[test]
    fn text_round_trips_through_value() {
        let v = Value::Map(vec![
            (
                "nums".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(0.25)]),
            ),
            ("s".into(), Value::Str("héllo \"q\"".into())),
            ("none".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let pair: (u32, String) = from_str(r#"[7, "x"]"#).unwrap();
        assert_eq!(pair, (7, "x".to_string()));
    }
}
