//! Offline vendored ChaCha random number generators.
//!
//! Implements the ChaCha stream cipher's block function (Bernstein, 2008)
//! as a counter-mode RNG with 8, 12 or 20 rounds, exposing the same type
//! names as the `rand_chacha` crate. The keystream is a faithful ChaCha
//! keystream over a 256-bit key / 64-bit counter / 64-bit nonce layout;
//! seeds expand via the `rand 0.8` SplitMix64 convention. Streams are
//! deterministic and platform-independent, which is the property the
//! workspace relies on for reproducible experiments.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 output words from key/counter/nonce, `rounds` must
/// be even.
fn chacha_block(key: &[u32; 8], counter: u64, nonce: u64, rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = nonce as u32;
    state[15] = (nonce >> 32) as u32;

    let mut working = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for i in 0..16 {
        working[i] = working[i].wrapping_add(state[i]);
    }
    working
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            nonce: u64,
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 means "refill".
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, self.nonce, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// Select a keystream stream (nonce); resets buffered output.
            pub fn set_stream(&mut self, stream: u64) {
                self.nonce = stream;
                self.counter = 0;
                self.index = 16;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                $name {
                    key,
                    counter: 0,
                    nonce: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds as a deterministic RNG."
);
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds as a deterministic RNG."
);
chacha_rng!(
    ChaCha20Rng,
    20,
    "ChaCha with 20 rounds as a deterministic RNG."
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn ietf_chacha20_test_vector_block_zero() {
        // RFC 7539 §2.3.2 uses a 32-bit counter and 96-bit nonce, so it is
        // not directly comparable to this 64/64 layout; instead check the
        // all-zero key/counter/nonce keystream is the well-known ChaCha20
        // zero-block (same layout as the original Bernstein spec).
        let key = [0u32; 8];
        let block = chacha_block(&key, 0, 0, 20);
        // First keystream words of the published all-zero ChaCha20 block
        // (bytes 76 b8 e0 ad a0 f1 3d 90 … little-endian).
        assert_eq!(block[0], 0xade0_b876);
        assert_eq!(block[1], 0x903d_f1a0);
        // Regression pin for the tail of the block.
        assert_eq!(block[15], 0x8665_eeb2);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_sampling_is_uniformish() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn streams_differ() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(1);
        b.set_stream(5);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = ChaCha8Rng::seed_from_u64(1);
        let _ = c.next_u64();
    }
}
