//! The §6 "hybrid oblivious with minimal planning" idea: compare pure
//! oblivious balancing, the hybrid repair variant, and the planned-path
//! baselines on the same workload and topology, on one seed.
//!
//! ```sh
//! cargo run -p qnet --example hybrid_seeding --release
//! ```

use qnet::prelude::*;

fn main() {
    let topology = Topology::RandomConnectedGrid { side: 4 };
    let base = ExperimentConfig {
        network: NetworkConfig::new(topology).with_topology_seed(3),
        workload: WorkloadSpec::paper_default(topology.node_count()).with_requests(25),
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed: 3,
        max_sim_time_s: 8_000.0,
    };

    println!(
        "Topology: {} ({} nodes)",
        topology.label(),
        topology.node_count()
    );
    println!(
        "Workload: {} sequential consumption requests\n",
        base.workload.nominal_requests()
    );
    println!(
        "{:>28} {:>10} {:>9} {:>11} {:>9} {:>12}",
        "mode", "overhead", "swaps", "satisfied", "repairs", "sim seconds"
    );
    // Every registered planned/oblivious discipline, by policy name — the
    // greedy nested-ordering policy rides along purely through the registry.
    for mode in ["oblivious", "hybrid", "greedy", "planned", "connectionless"] {
        let mode = PolicyId::parse(mode).expect("registered policy");
        let config = ExperimentConfig { mode, ..base };
        let r = Experiment::new(config).run();
        println!(
            "{:>28} {:>10} {:>9} {:>11} {:>9} {:>12.1}",
            format!("{mode:?}"),
            r.swap_overhead()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            r.swaps_performed,
            format!(
                "{}/{}",
                r.satisfied_requests,
                r.satisfied_requests as u64 + r.unsatisfied_requests
            ),
            r.metrics.repair_swaps(),
            r.simulated_seconds,
        );
    }

    println!(
        "\nReading guide: the hybrid mode finishes the workload in less simulated time than \
         pure oblivious balancing because a consumer that is not directly served can close \
         the gap with a couple of swaps over the *already seeded* pairs — the mitigation \
         §6 proposes for the starvation effect."
    );
}
