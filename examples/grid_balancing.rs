//! Watch the §4 max-min balancer spread Bell pairs over a wraparound grid
//! when generation and consumption are frozen — the setting in which the
//! paper argues the protocol converges to a max-min fair allocation.
//!
//! ```sh
//! cargo run -p qnet --example grid_balancing --release
//! ```

use qnet::prelude::*;
use qnet::topology::builders;

fn main() {
    let side = 4;
    let graph = builders::torus_grid(side);
    let n = graph.node_count();
    println!(
        "Torus grid {side}×{side}: {n} nodes, {} generation edges",
        graph.edge_count()
    );

    // Stock every generation edge with a burst of freshly generated pairs.
    let per_edge = 8;
    let mut inventory = Inventory::new(n);
    for (a, b) in graph.edges() {
        for _ in 0..per_edge {
            inventory.add_pair(NodePair::new(a, b)).unwrap();
        }
    }
    println!(
        "Seeded {} pairs ({} per generation edge). Non-edge pools are all empty.",
        inventory.total_pairs(),
        per_edge
    );

    // Run the balancer to quiescence (no generation, no consumption).
    let policy = BalancerPolicy;
    let overhead = |_: NodePair| 1.0;
    let swaps = policy.run_to_quiescence(&mut inventory, &overhead, 1_000_000);
    println!(
        "Balancer performed {} swaps before reaching quiescence.",
        swaps.len()
    );

    // Summarise the resulting distribution of pool counts by hop distance.
    let mut by_distance: Vec<(usize, u64, u64)> = Vec::new(); // (hops, pools, pairs)
    for (pair, count) in inventory.nonzero_pairs() {
        let hops = qnet::topology::bfs_path(&graph, pair.lo(), pair.hi())
            .map(|p| p.hops())
            .unwrap_or(0);
        match by_distance.iter_mut().find(|(h, _, _)| *h == hops) {
            Some(entry) => {
                entry.1 += 1;
                entry.2 += count;
            }
            None => by_distance.push((hops, 1, count)),
        }
    }
    by_distance.sort_unstable();
    println!("\n{:>10} {:>12} {:>12}", "hops", "pools", "pairs stored");
    for (hops, pools, pairs) in &by_distance {
        println!("{hops:>10} {pools:>12} {pairs:>12}");
    }
    println!(
        "\nBefore balancing every stored pair spanned exactly 1 hop; after balancing the \
         inventory has been pushed outward so that multi-hop pools are pre-seeded — the \
         'water pushed to the faucet' picture of §2.1."
    );

    // Verify the §4 quiescence condition: no node has a preferable swap left.
    let stuck = (0..n)
        .map(NodeId::from)
        .filter(|&node| {
            policy
                .find_preferable_swap(&inventory, &inventory, node, &overhead)
                .is_some()
        })
        .count();
    println!("Nodes with a remaining preferable swap: {stuck} (must be 0).");
}
