//! Quickstart: run one path-oblivious swapping experiment on the paper's
//! cycle topology and print the headline numbers.
//!
//! ```sh
//! cargo run -p qnet --example quickstart --release
//! ```

use qnet::prelude::*;

fn main() {
    // A 25-node cycle generation graph with g = 1 on every edge, D = 1, the
    // paper's 35-consumer-pair sequential workload, and the §4 max-min
    // balancing protocol with global buffer knowledge.
    let topology = Topology::Cycle { nodes: 25 };
    let config = ExperimentConfig {
        network: NetworkConfig::new(topology).with_distillation(DistillationSpec::Uniform(1.0)),
        workload: WorkloadSpec::paper_default(topology.node_count()),
        // Policies are selected by registry name; `PolicyId::parse("oblivious")`
        // accepts the same strings as the campaign CLI's --modes axis.
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed: 2025,
        max_sim_time_s: 20_000.0,
    };

    println!("Running path-oblivious swapping on {} …", topology.label());
    let result = Experiment::new(config).run();

    println!("{}", result.summary_line());
    println!();
    println!("satisfied requests : {}", result.satisfied_requests);
    println!("unsatisfied        : {}", result.unsatisfied_requests);
    println!("swaps performed    : {}", result.swaps_performed);
    println!("pairs generated    : {}", result.metrics.pairs_generated);
    println!("leftover pairs     : {}", result.metrics.leftover_pairs);
    println!(
        "swap overhead      : {}",
        result
            .swap_overhead()
            .map(|o| format!(
                "{o:.3} (≥ 1 by construction; 1 would be the nested-swapping optimum)"
            ))
            .unwrap_or_else(|| "n/a".into())
    );
    println!(
        "classical messages : {} ({} correction bits)",
        result.metrics.classical.total_messages(),
        result.metrics.classical.correction_bits
    );
    println!("simulated time     : {:.1} s", result.simulated_seconds);
}
