//! Solve the §3 steady-state LP on a small network under each of the §3.3
//! objectives, and show how the §3.2 overheads (distillation, loss, QEC)
//! change the provisioning requirements.
//!
//! ```sh
//! cargo run -p qnet --example lp_analysis --release
//! ```

use qnet::core::lp_model::{LpObjective, SteadyStateModel};
use qnet::prelude::*;
use qnet::topology::builders;

fn main() {
    // A 3×3 torus with three consumer pairs of varying distance.
    let graph = builders::torus_grid(3);
    let n = graph.node_count();
    let capacity = RateMatrices::uniform_generation(&graph, 1.0);
    let mut demand = RateMatrices::zeros(n);
    demand.set_consumption(NodePair::new(NodeId(0), NodeId(4)), 1.0); // 2 hops
    demand.set_consumption(NodePair::new(NodeId(1), NodeId(7)), 1.0); // 2 hops
    demand.set_consumption(NodePair::new(NodeId(3), NodeId(5)), 1.0); // 1 hop (wraparound)

    println!("Generation graph: torus-3x3, capacity 1 pair/s per edge");
    println!("Demand: three consumer pairs, 1 pair/s each\n");

    let model = SteadyStateModel::new(&capacity, &demand);
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>8}",
        "objective", "Σ g", "Σ c", "Σ σ", "α"
    );
    for objective in [
        LpObjective::MaxTotalConsumption,
        LpObjective::MaxMinConsumption,
        LpObjective::MaxProportionalAlpha,
    ] {
        let sol = model.solve(objective);
        println!(
            "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            format!("{objective:?}"),
            sol.total_generation(),
            sol.total_consumption(),
            sol.total_swap_rate(),
            sol.alpha
                .map(|a| format!("{a:.3}"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // Scale the demand down until generation is sufficient, then ask for the
    // cheapest provisioning.
    let mut modest = RateMatrices::zeros(n);
    modest.set_consumption(NodePair::new(NodeId(0), NodeId(4)), 0.2);
    modest.set_consumption(NodePair::new(NodeId(1), NodeId(7)), 0.2);
    modest.set_consumption(NodePair::new(NodeId(3), NodeId(5)), 0.2);
    println!("\nGeneration-sufficient regime (demand 0.2 pair/s each):");
    println!(
        "{:<10} {:>6} {:>14} {:>14}",
        "L", "D", "min Σ g", "min max g"
    );
    for &(survival, distillation) in &[(1.0, 1.0), (1.0, 2.0), (0.8, 1.0), (0.8, 2.0)] {
        let m = SteadyStateModel::new(&capacity, &modest).with_overheads(survival, distillation);
        let total = m.solve(LpObjective::MinTotalGeneration);
        let minmax = m.solve(LpObjective::MinMaxGeneration);
        println!(
            "{:<10.2} {:>6.1} {:>14.3} {:>14.3}",
            survival,
            distillation,
            total.total_generation(),
            minmax.objective_value,
        );
    }
    println!(
        "\nAs §3.2 predicts, the required generation scales like D/L: every consumed pair \
         costs D departures and only a fraction L of arrivals survive."
    );

    // Where do the swaps happen? Show the swap schedule of the max-min plan.
    let fair = model.solve(LpObjective::MaxMinConsumption);
    println!("\nSwap schedule of the max-min plan (rate ≥ 0.05 only):");
    for s in fair.swap_rates.iter().filter(|s| s.rate >= 0.05) {
        println!(
            "  node {} swaps for pair {} at {:.3} /s",
            s.repeater, s.produces, s.rate
        );
    }
}
