//! Offered-load sweep: satisfaction ratio and sojourn latency vs. arrival
//! rate, for every registered swapping discipline.
//!
//! The paper's §5 evaluation is closed-loop (a fixed batch of requests, all
//! pending at t = 0); this example drives the same network with *open-loop*
//! Poisson traffic and watches the two quantities a production quantum
//! internet would be judged on: what fraction of requests is served, and
//! how long a request waits from arrival to satisfaction (p50 / p95).
//!
//! ```sh
//! cargo run -p qnet --example open_loop_latency --release
//! ```

use qnet::core::workload::TrafficModel;
use qnet::prelude::*;

fn main() {
    let topology = Topology::Cycle { nodes: 9 };
    let arrival_horizon_s = 600.0;
    let rates_hz = [1.0, 3.0, 5.0, 8.0];
    let policies = ["oblivious", "hybrid", "greedy", "planned", "connectionless"];

    println!(
        "Open-loop Poisson traffic on {} (arrivals for {arrival_horizon_s} s, 10 consumer pairs)\n",
        topology.label()
    );
    println!(
        "{:>16} {:>9} {:>9} {:>11} {:>10} {:>10}",
        "policy", "rate", "arrived", "satisfied", "p50 lat", "p95 lat"
    );

    for policy in policies {
        let mode = PolicyId::parse(policy).expect("registered policy");
        for rate_hz in rates_hz {
            let config = ExperimentConfig {
                network: NetworkConfig::new(topology),
                workload: WorkloadSpec::open_loop(0, 10, rate_hz, arrival_horizon_s),
                mode,
                knowledge: KnowledgeModel::Global,
                seed: 7,
                // Run past the arrival horizon so the queue can drain.
                max_sim_time_s: arrival_horizon_s * 2.0,
            };
            debug_assert!(matches!(
                config.workload.traffic,
                TrafficModel::OpenLoopPoisson { .. }
            ));
            let r = Experiment::new(config).run();
            let fmt_latency = |l: Option<f64>| {
                l.map(|v| format!("{v:8.1}s"))
                    .unwrap_or_else(|| "n/a".into())
            };
            println!(
                "{:>16} {:>6.2}Hz {:>9} {:>7}/{:<3} {:>10} {:>10}",
                policy,
                rate_hz,
                r.metrics.arrived_requests,
                r.satisfied_requests,
                r.metrics.arrived_requests,
                fmt_latency(r.latency_p50_s()),
                fmt_latency(r.latency_p95_s()),
            );
        }
        println!();
    }

    println!(
        "The same sweep, campaign-grade (replicates, CIs, JSONL):\n  \
         cargo run --release -p qnet-campaign --bin campaign -- \\\n    \
         --workload open-loop:0.25,open-loop:0.5,open-loop:1,open-loop:2 \\\n    \
         --modes oblivious,hybrid,greedy,planned,connectionless"
    );
}
