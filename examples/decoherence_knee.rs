//! The decoherence knee: satisfaction ratio and delivered fidelity vs.
//! memory coherence time, for every registered swapping discipline.
//!
//! The paper's evaluation treats Bell pairs as interchangeable tokens; this
//! example turns on the link-physics subsystem
//! ([`qnet::core::physics::PhysicsModel::Decoherent`]) and watches what
//! memory decay does to each discipline on the cycle-9 baseline. The
//! physics sharpens the paper's core comparison: oblivious balancing seeds
//! pairs *ahead of demand*, so its inventory is systematically **older**
//! than a planner's just-in-time pairs — and decoherence punishes exactly
//! that. Watch the knee: at long T2 the disciplines order as in the ideal
//! evaluation; as T2 shrinks toward the swap-scan period, the oblivious
//! families' satisfaction collapses first while the planned baselines
//! degrade gracefully.
//!
//! ```sh
//! cargo run -p qnet --example decoherence_knee --release
//! ```
//!
//! The campaign-grade version of the same sweep (replicates, CIs, JSONL
//! `fidelity_*` columns) is printed at the end.

use qnet::core::physics::PhysicsModel;
use qnet::prelude::*;

fn main() {
    let topology = Topology::Cycle { nodes: 9 };
    let coherence_times_s = [f64::INFINITY, 8.0, 2.0, 0.5];
    let policies = ["oblivious", "hybrid", "greedy", "planned", "connectionless"];
    let requests = 12;

    println!(
        "Decoherent link physics on {} ({requests} closed-loop requests, F0 = {}, no cutoff)\n",
        topology.label(),
        PhysicsModel::DEFAULT_INITIAL_FIDELITY,
    );
    println!(
        "{:>16} {:>9} {:>11} {:>10} {:>10} {:>10}",
        "policy", "T2", "satisfied", "fid mean", "fid p50", "fid p95"
    );

    for policy in policies {
        let mode = PolicyId::parse(policy).expect("registered policy");
        for t2 in coherence_times_s {
            let network = if t2.is_finite() {
                NetworkConfig::new(topology).with_physics(PhysicsModel::decoherent(t2))
            } else {
                NetworkConfig::new(topology) // ideal: the paper's semantics
            };
            let config = ExperimentConfig {
                network,
                workload: WorkloadSpec::closed_loop(0, 10, requests),
                mode,
                knowledge: KnowledgeModel::Global,
                seed: 7,
                max_sim_time_s: 2_000.0,
            };
            let r = Experiment::new(config).run();
            let fmt = |f: Option<f64>| {
                f.map(|v| format!("{v:10.4}"))
                    .unwrap_or_else(|| format!("{:>10}", "n/a"))
            };
            let stats = r.metrics.fidelity_stats();
            println!(
                "{:>16} {:>9} {:>7}/{:<3} {} {} {}",
                policy,
                if t2.is_finite() {
                    format!("{t2}s")
                } else {
                    "ideal".to_string()
                },
                r.satisfied_requests,
                requests,
                fmt((stats.count() > 0).then(|| stats.mean())),
                fmt(r.metrics.fidelity_percentile(0.50)),
                fmt(r.metrics.fidelity_percentile(0.95)),
            );
        }
        println!();
    }

    println!(
        "With a fidelity floor, decay becomes a hard failure class: pairs past\n\
         their useful age expire (expired_pairs), and deliveries below the floor\n\
         are rejected (fidelity_rejected_requests) instead of satisfied.\n"
    );
    println!(
        "The same sweep, campaign-grade (replicates, CIs, fidelity_* columns):\n  \
         cargo run --release -p qnet-campaign --bin campaign -- \\\n    \
         --physics ideal,decoherent:8,decoherent:2,decoherent:0.5 \\\n    \
         --modes oblivious,hybrid,greedy,planned,connectionless"
    );
}
