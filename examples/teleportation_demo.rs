//! The quantum substrate end to end: teleportation over noisy Bell pairs
//! (Figure 1 of the paper), entanglement swapping (Figure 2), fidelity decay
//! along repeater chains, and the distillation overheads `D` the protocol
//! layer consumes.
//!
//! ```sh
//! cargo run -p qnet --example teleportation_demo --release
//! ```

use qnet::quantum::complex::Complex;
use qnet::quantum::distill::{overhead_factor, DistillationProtocol};
use qnet::quantum::swap::{chain_swap_fidelity, swap_ideal, swap_werner_fidelity};
use qnet::quantum::teleport::{average_teleport_fidelity, teleport_over_werner};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() {
    let mut rng = ChaCha12Rng::seed_from_u64(7);

    println!("== Teleportation over Werner channels (Fig. 1) ==");
    println!(
        "{:>18} {:>22} {:>22}",
        "channel fidelity", "measured avg fidelity", "analytic (2F+1)/3"
    );
    let s = std::f64::consts::FRAC_1_SQRT_2;
    for &f in &[1.0, 0.95, 0.85, 0.75] {
        let runs = 2000;
        let mean: f64 = (0..runs)
            .map(|_| {
                teleport_over_werner(Complex::real(s), Complex::new(0.0, s), f, &mut rng).fidelity
            })
            .sum::<f64>()
            / runs as f64;
        println!(
            "{:>18.2} {:>22.4} {:>22.4}",
            f,
            mean,
            average_teleport_fidelity(f)
        );
    }

    println!("\n== Entanglement swapping (Fig. 2) ==");
    let out = swap_ideal(&mut rng);
    println!(
        "ideal swap: BSM bits = {:?}, resulting A–B fidelity = {:.6}",
        out.classical_bits, out.fidelity
    );
    println!("Werner-pair swaps, closed form:");
    for &(f1, f2) in &[(0.99, 0.99), (0.95, 0.9), (0.85, 0.85)] {
        println!(
            "  F₁={f1:.2}, F₂={f2:.2} → F_out = {:.4}",
            swap_werner_fidelity(f1, f2)
        );
    }

    println!("\n== Fidelity along repeater chains (why distillation is needed) ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "hops", "F/hop = 0.98", "F/hop = 0.95"
    );
    for &n in &[1usize, 2, 4, 8, 16] {
        println!(
            "{:>10} {:>14.4} {:>14.4}",
            n,
            chain_swap_fidelity(0.98, n),
            chain_swap_fidelity(0.95, n)
        );
    }

    println!("\n== Distillation overheads D (BBPSSW, pump to ≥ 0.95) ==");
    println!("{:>16} {:>12}", "raw fidelity", "D");
    for &f in &[0.99, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65] {
        println!(
            "{:>16.2} {:>12}",
            f,
            overhead_factor(DistillationProtocol::Bbpssw, f, 0.95)
                .map(|d| format!("{d:.2}"))
                .unwrap_or_else(|| "unreachable".into())
        );
    }
    println!(
        "\nThese D values are exactly the per-pair overheads the §3 LP and the §4 balancer \
         consume; Figure 4's x-axis sweeps them directly."
    );
}
