//! Example: declare and run a small sweep campaign, then print the
//! aggregated oblivious-vs-planned comparison.
//!
//! ```sh
//! cargo run --release --example campaign_sweep
//! ```

use qnet::campaign::{aggregate, run_campaign, RunnerConfig, ScenarioGrid};
use qnet::prelude::*;

fn main() {
    // Axes: two topology families × two protocol modes × two distillation
    // overheads, five replicates each — 40 experiments.
    let grid = ScenarioGrid::new(7)
        .with_topologies(vec![
            Topology::Cycle { nodes: 9 },
            Topology::TorusGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_distillations(vec![1.0, 2.0])
        // node_count 0 is patched to each topology at expansion time.
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 8, 10)])
        .with_replicates(5)
        .with_horizon_s(3_000.0);

    println!(
        "running {} scenarios ({} cells × {} replicates)…",
        grid.scenario_count(),
        grid.cell_count(),
        grid.replicates
    );

    let result = run_campaign(&grid, &RunnerConfig::default());
    println!(
        "finished in {:.2}s on {} threads",
        result.wall_seconds, result.threads_used
    );

    let report = aggregate(&grid, &result);
    println!("\nper-cell swap overhead (mean ± 95% CI):");
    for cell in &report.cell_reports {
        println!(
            "  {:<12} D={:<3} {:>26}  {} ± {}  (sat {:.0}%)",
            cell.key.topology,
            cell.key.distillation,
            format!("{:?}", cell.key.mode),
            cell.overhead_mean
                .map(|m| format!("{m:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.overhead_ci95
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "n/a".into()),
            cell.satisfaction_mean * 100.0
        );
    }

    println!("\noblivious / planned overhead ratios:");
    for r in &report.ratios {
        println!(
            "  {:<12} D={:<3} ratio {:.3}  ({:.3} vs {:.3})",
            r.topology, r.distillation, r.ratio, r.numerator_overhead, r.denominator_overhead
        );
    }
}
