//! The §6 staleness trade-off curve: gossip refresh period vs. classical
//! message volume, believed-row age, missed swaps and swap overhead.
//!
//! The paper relaxes the oblivious discipline's global-knowledge assumption
//! with BitTorrent-like gossip: each node periodically pulls the buffer-count
//! rows of a few rotating peers instead of hearing every change instantly.
//! Messages get cheaper as the refresh period grows — but the believed counts
//! age, swaps proposed on stale rows start missing, and the overhead climbs.
//! This example walks that curve on the paper's 9-node cycle, for both the
//! oblivious balancer (which takes believed counts at face value) and the
//! gossip-aware variant (which discounts them by row age).
//!
//! ```sh
//! cargo run -p qnet --example gossip_staleness --release
//! ```

use qnet::prelude::*;

fn main() {
    let topology = Topology::Cycle { nodes: 9 };
    let peers_per_refresh = 2;
    let periods_s = [0.25, 0.5, 1.0, 2.0, 4.0];
    let policies = ["oblivious", "gossip-aware"];

    println!(
        "Gossip staleness trade-off on {} (K = {peers_per_refresh} peers per refresh, \
         12 closed-loop requests)\n",
        topology.label()
    );
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "policy", "knowledge", "msgs", "satisfied", "overhead", "age mean", "age p95", "missed"
    );

    for policy in policies {
        let mode = PolicyId::parse(policy).expect("registered policy");
        let run = |knowledge: KnowledgeModel| {
            Experiment::new(ExperimentConfig {
                network: NetworkConfig::new(topology),
                workload: WorkloadSpec::closed_loop(topology.node_count(), 10, 12),
                mode,
                knowledge,
                seed: 13,
                max_sim_time_s: 6_000.0,
            })
            .run()
        };
        let fmt_opt = |v: Option<f64>| {
            v.map(|v| format!("{v:8.2}s"))
                .unwrap_or_else(|| "n/a".into())
        };
        let row = |knowledge: KnowledgeModel| {
            let r = run(knowledge);
            println!(
                "{:>14} {:>12} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10}",
                policy,
                knowledge.label(),
                r.metrics.classical.count_update_messages,
                r.satisfied_requests,
                r.swap_overhead()
                    .map(|o| format!("{o:7.2}"))
                    .unwrap_or_else(|| "n/a".into()),
                fmt_opt(r.metrics.stale_row_age_mean_s),
                fmt_opt(r.metrics.stale_row_age_p95_s),
                r.metrics.missed_swaps,
            );
        };
        // The global-knowledge anchor: every change broadcast, zero age.
        row(KnowledgeModel::Global);
        for period in periods_s {
            row(KnowledgeModel::Gossip {
                peers_per_refresh,
                refresh_period_s: period,
            });
        }
        println!();
    }

    println!(
        "Reading the curve: message volume falls with the refresh period while\n\
         believed-row age, missed swaps and overhead climb — the paper's §6 knob.\n\
         The campaign-grade sweep (replicates, CIs, JSONL) behind\n\
         results/gossip_staleness.jsonl:\n  \
         cargo run --release -p qnet-campaign --bin campaign -- \\\n    \
         --topologies cycle:25 --fabric deployed-fiber \\\n    \
         --modes oblivious,gossip-aware \\\n    \
         --knowledge global,gossip:2:0.25,gossip:2:1,gossip:2:4,gossip:8:0.25,gossip:8:1,gossip:8:4"
    );
}
