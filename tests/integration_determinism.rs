//! Reproducibility guarantees: every stochastic component of the workspace is
//! driven by explicit seeds, so identical configurations produce identical
//! results and different seeds genuinely differ.

use qnet::core::classical::KnowledgeModel;
use qnet::prelude::*;

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        network: NetworkConfig::new(Topology::RandomConnectedGrid { side: 3 })
            .with_topology_seed(seed),
        workload: WorkloadSpec::closed_loop(9, 8, 10),
        mode: PolicyId::OBLIVIOUS,
        knowledge: KnowledgeModel::Global,
        seed,
        max_sim_time_s: 3_000.0,
    }
}

#[test]
fn identical_experiment_configs_give_identical_results() {
    let a = Experiment::new(config(41)).run();
    let b = Experiment::new(config(41)).run();
    assert_eq!(a, b);
    // Includes the fine-grained event-level data, not just the headline.
    assert_eq!(a.metrics.satisfied, b.metrics.satisfied);
    assert_eq!(a.metrics.classical, b.metrics.classical);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = Experiment::new(config(41)).run();
    let b = Experiment::new(config(42)).run();
    assert_ne!(a, b);
}

#[test]
fn workload_generation_is_seed_stable() {
    let spec = WorkloadSpec::paper_default(25);
    assert_eq!(spec.generate(7), spec.generate(7));
    assert_ne!(spec.generate(7), spec.generate(8));
    // Open-loop arrivals and Zipf selection are seeded the same way.
    let open = WorkloadSpec::open_loop(25, 10, 1.0, 100.0)
        .with_discipline(qnet::core::workload::PairSelection::ZipfSkew { s: 1.1 });
    assert_eq!(open.generate(7), open.generate(7));
    assert_ne!(open.generate(7), open.generate(8));
}

#[test]
fn random_topologies_are_seed_stable() {
    for t in [
        Topology::RandomConnectedGrid { side: 5 },
        Topology::ErdosRenyiConnected {
            nodes: 20,
            edge_probability: 0.15,
        },
        Topology::RandomTree { nodes: 20 },
    ] {
        assert_eq!(t.build(9), t.build(9), "{}", t.label());
        assert_ne!(t.build(9), t.build(10), "{}", t.label());
    }
}

#[test]
fn sim_rng_streams_are_stable_across_clones() {
    use rand::RngCore;
    let root = SimRng::new(99);
    let mut a = root.derive("generation");
    let mut b = root.clone().derive("generation");
    for _ in 0..32 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
