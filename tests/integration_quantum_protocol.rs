//! Integration tests tying the quantum substrate to the protocol layer: the
//! fidelity/distillation numbers the state-level simulator produces are the
//! same ones the balancer, the LP and the experiment harness consume.

use qnet::core::config::{DistillationSpec, NetworkConfig};
use qnet::prelude::*;
use qnet::quantum::bell::{werner_state, BellState};
use qnet::quantum::complex::Complex;
use qnet::quantum::decoherence::{CutoffPolicy, DecoherenceModel};
use qnet::quantum::distill::{overhead_factor, plan_distillation, DistillationProtocol};
use qnet::quantum::swap::{chain_swap_fidelity, swap_werner_fidelity};
use qnet::quantum::teleport::{average_teleport_fidelity, teleport_over_werner};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn fidelity_derived_distillation_spec_matches_quantum_layer() {
    let raw = 0.82;
    let target = 0.95;
    let spec = DistillationSpec::FromFidelity {
        raw_fidelity: raw,
        target_fidelity: target,
    };
    let from_config = spec.overhead();
    let from_quantum = overhead_factor(DistillationProtocol::Bbpssw, raw, target).unwrap();
    assert!((from_config - from_quantum.max(1.0)).abs() < 1e-12);

    // The configuration's integer draw factor is the ceiling the simulator
    // uses for every swap and consumption.
    let config = NetworkConfig::new(Topology::Cycle { nodes: 5 }).with_distillation(spec);
    assert_eq!(config.pairs_per_distilled(), from_quantum.ceil() as u64);
}

#[test]
fn swapping_werner_chains_justifies_distillation_before_consumption() {
    // A pair delivered over a 4-hop chain of 0.9-fidelity links is *below*
    // the 0.95 target, so the protocol's per-pair distillation overhead for
    // that chain must exceed 1; a 1-hop pair at 0.96 needs none.
    let chain = chain_swap_fidelity(0.9, 4);
    assert!(chain < 0.95);
    let d_chain = overhead_factor(DistillationProtocol::Bbpssw, chain, 0.95);
    match d_chain {
        Some(d) => assert!(d > 1.0),
        None => assert!(chain <= 0.5, "only undistillable chains may fail"),
    }
    let d_direct = overhead_factor(DistillationProtocol::Bbpssw, 0.96, 0.95).unwrap();
    assert_eq!(d_direct, 1.0);
}

#[test]
fn swap_formula_agrees_with_state_vector_protocol() {
    // The closed form used at protocol scale must agree with the exact
    // 4-qubit state-vector simulation in the pure-input limit.
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    for _ in 0..16 {
        let out = qnet::quantum::swap::swap_ideal(&mut rng);
        assert!((out.fidelity - swap_werner_fidelity(1.0, 1.0)).abs() < 1e-9);
    }
}

#[test]
fn teleportation_fidelity_tracks_channel_quality() {
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let mean_fidelity = |channel: f64, rng: &mut ChaCha12Rng| {
        let n = 1500;
        (0..n)
            .map(|_| {
                teleport_over_werner(Complex::real(s), Complex::new(0.0, s), channel, rng).fidelity
            })
            .sum::<f64>()
            / n as f64
    };
    let good = mean_fidelity(0.97, &mut rng);
    let poor = mean_fidelity(0.75, &mut rng);
    assert!(good > poor + 0.05);
    assert!((good - average_teleport_fidelity(0.97)).abs() < 0.04);
    assert!((poor - average_teleport_fidelity(0.75)).abs() < 0.04);
}

#[test]
fn decoherence_cutoff_is_consistent_with_werner_decay() {
    // A transport layer that wants stored pairs to stay distillable (F > 0.5)
    // derives its cutoff from the decoherence model; check the cutoff indeed
    // keeps the fidelity above the floor and that one more coherence time
    // would not.
    let model = DecoherenceModel::with_coherence_time(2.0);
    let f0 = 0.95;
    let policy = CutoffPolicy::from_fidelity_floor(&model, f0, 0.55);
    assert!(policy.max_age_s.is_finite());
    let at_cutoff = model.fidelity_after(f0, policy.max_age_s);
    assert!((at_cutoff - 0.55).abs() < 1e-9);
    assert!(model.fidelity_after(f0, policy.max_age_s + 2.0) < 0.55);
    assert!(!policy.should_discard(policy.max_age_s * 0.9));
    assert!(policy.should_discard(policy.max_age_s * 1.1));
}

#[test]
fn werner_state_fidelity_is_what_the_rates_assume() {
    // The §3.2 loss factor treats "fully distilled" pairs as the unit; the
    // density-matrix layer confirms a Werner state's overlap with Φ⁺ is its
    // nominal fidelity, so counting pairs weighted by fidelity is coherent.
    for &f in &[0.6, 0.75, 0.9, 0.99] {
        let rho = werner_state(f);
        let measured = rho.fidelity_with_pure(&BellState::PhiPlus.state_vector());
        assert!((measured - f).abs() < 1e-12);
    }
}

#[test]
fn end_to_end_story_chain_swap_then_distill_then_teleport() {
    // The full pipeline the paper's network implements, at the physics level:
    // swap a 4-hop chain of imperfect pairs, pump the result back up with
    // BBPSSW, then teleport over it; the final teleportation fidelity must
    // beat teleporting over the raw chain output.
    let mut rng = ChaCha12Rng::seed_from_u64(21);
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let raw_chain = chain_swap_fidelity(0.92, 4);
    let plan = plan_distillation(DistillationProtocol::Bbpssw, raw_chain, 0.97, 32).unwrap();
    assert!(plan.achieved_fidelity >= 0.97);
    assert!(plan.expected_raw_pairs > 1.0);

    let mean = |channel: f64, rng: &mut ChaCha12Rng| {
        let n = 1500;
        (0..n)
            .map(|_| {
                teleport_over_werner(Complex::real(s), Complex::new(0.0, s), channel, rng).fidelity
            })
            .sum::<f64>()
            / n as f64
    };
    let before = mean(raw_chain, &mut rng);
    let after = mean(plan.achieved_fidelity, &mut rng);
    assert!(
        after > before,
        "distillation must pay off: {before:.3} vs {after:.3}"
    );
}
