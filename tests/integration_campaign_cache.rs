//! Workspace-level tests of the incremental campaign engine: the
//! content-addressed outcome cache, deterministic grid sharding and
//! resumable shard merging. The central contract, pinned byte-for-byte on
//! the CLI's default 108-scenario grid:
//!
//! cold single-process run ≡ warm (fully cached) run ≡ any `--shard I/N`
//! partition recombined with `merge_shards` — identical JSONL reports,
//! with the warm run executing **zero** simulations.

use qnet::campaign::{
    aggregate, merge_shards, read_shard, run_campaign, run_campaign_cached,
    run_scenarios_with_progress, shard_to_string, to_jsonl_string, OutcomeCache, RunnerConfig,
    ScenarioGrid, ShardSpec,
};
use qnet::prelude::*;
use std::path::PathBuf;

/// The `campaign` CLI's default grid shape (3 topologies × 3 modes × 2 D ×
/// 6 replicates = 108 scenarios), at the CI smoke scale (6 requests,
/// 1000 s horizon) so the whole suite stays fast.
fn default_grid() -> ScenarioGrid {
    ScenarioGrid::new(1)
        .with_topologies(vec![
            Topology::Cycle { nodes: 9 },
            Topology::RandomConnectedGrid { side: 3 },
            Topology::WattsStrogatz {
                nodes: 9,
                neighbors: 4,
                rewire_probability: 0.2,
            },
        ])
        .with_modes(vec![
            PolicyId::OBLIVIOUS,
            PolicyId::PLANNED,
            PolicyId::HYBRID,
        ])
        .with_distillations(vec![1.0, 2.0])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 10, 6)])
        .with_replicates(6)
        .with_horizon_s(1_000.0)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qnet-integration-cache-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cold_warm_and_sharded_reports_are_byte_identical_on_the_default_grid() {
    let grid = default_grid();
    assert_eq!(grid.scenario_count(), 108, "the CLI's default grid");
    let dir = temp_dir("default-grid");

    // Cold run: everything simulates, the cache fills.
    let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
    let cold = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut cache, |_, _| {}).unwrap();
    assert_eq!(cold.simulated, 108);
    assert_eq!(cold.cache_hits, 0);
    let cold_jsonl = to_jsonl_string(&aggregate(&grid, &cold));

    // The cache matches an uncached run exactly.
    let uncached = run_campaign(&grid, &RunnerConfig::serial());
    assert_eq!(cold.outcomes, uncached.outcomes);

    // Warm run from a fresh cache handle: zero simulations, identical
    // bytes.
    let mut warm_cache = OutcomeCache::open(&dir, &grid).unwrap();
    assert_eq!(warm_cache.len(), 108);
    let warm = run_campaign_cached(
        &grid,
        &RunnerConfig::with_threads(4),
        &mut warm_cache,
        |_, _| {},
    )
    .unwrap();
    assert_eq!(warm.simulated, 0, "a fully warm run must not simulate");
    assert_eq!(warm.cache_hits, 108);
    let warm_jsonl = to_jsonl_string(&aggregate(&grid, &warm));
    assert_eq!(
        cold_jsonl, warm_jsonl,
        "cold and warm reports must match byte-for-byte"
    );

    // Shard the id space 3 ways (served from the warm cache), write
    // self-describing shard files, read them back, merge — byte-identical
    // again.
    let shards: Vec<_> = (0..3)
        .map(|i| {
            let spec = ShardSpec::new(i, 3).unwrap();
            let mut shard_cache = OutcomeCache::open(&dir, &grid).unwrap();
            let run = run_scenarios_with_progress(
                &grid,
                &RunnerConfig::serial(),
                &spec.ids(grid.scenario_count()),
                Some(&mut shard_cache),
                |_, _| {},
            )
            .unwrap();
            assert_eq!(run.simulated, 0, "shards reuse the cache too");
            read_shard(&shard_to_string(&grid, spec, &run.outcomes)).unwrap()
        })
        .collect();
    let (merged_grid, merged) = merge_shards(shards).unwrap();
    assert_eq!(merged_grid, grid);
    let merged_jsonl = to_jsonl_string(&aggregate(&merged_grid, &merged));
    assert_eq!(
        cold_jsonl, merged_jsonl,
        "a 3-way shard partition must merge to the exact single-process report"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn freshly_executed_shard_partitions_merge_to_the_direct_report() {
    // Without any cache: shards genuinely execute their scenarios, and
    // every partition size recombines to the same bytes.
    let grid = ScenarioGrid::new(7)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::RandomConnectedGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_distillations(vec![1.0, 2.0])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 6, 6)])
        .with_replicates(3)
        .with_horizon_s(1_500.0);
    let direct_jsonl = to_jsonl_string(&aggregate(
        &grid,
        &run_campaign(&grid, &RunnerConfig::serial()),
    ));
    for count in [2, 5] {
        let shards: Vec<_> = (0..count)
            .map(|i| {
                let spec = ShardSpec::new(i, count).unwrap();
                let run = run_scenarios_with_progress(
                    &grid,
                    &RunnerConfig::with_threads(3),
                    &spec.ids(grid.scenario_count()),
                    None,
                    |_, _| {},
                )
                .unwrap();
                assert_eq!(run.simulated, run.outcomes.len());
                read_shard(&shard_to_string(&grid, spec, &run.outcomes)).unwrap()
            })
            .collect();
        let (merged_grid, merged) = merge_shards(shards).unwrap();
        let merged_jsonl = to_jsonl_string(&aggregate(&merged_grid, &merged));
        assert_eq!(direct_jsonl, merged_jsonl, "{count}-way partition");
    }
}

#[test]
fn poisoned_cache_entries_fall_back_to_recomputation_without_corrupting_the_report() {
    let grid = ScenarioGrid::new(23)
        .with_topologies(vec![Topology::Cycle { nodes: 5 }])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
        .with_replicates(2)
        .with_horizon_s(500.0);
    let dir = temp_dir("poison");
    let reference_jsonl = to_jsonl_string(&aggregate(
        &grid,
        &run_campaign(&grid, &RunnerConfig::serial()),
    ));

    // Fill the cache, then damage it: truncate one record mid-line and
    // append garbage plus a record from a different grid.
    let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
    run_campaign_cached(&grid, &RunnerConfig::serial(), &mut cache, |_, _| {}).unwrap();
    let path = cache.path().to_path_buf();
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), grid.scenario_count());
    let cut = lines[0].len() / 2;
    lines[0].truncate(cut); // truncated JSONL line
    lines.push("{\"kind\":\"outcome\"".to_string()); // unterminated JSON
    let foreign_grid = ScenarioGrid::new(24)
        .with_topologies(vec![Topology::Cycle { nodes: 5 }])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::HYBRID])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
        .with_replicates(2)
        .with_horizon_s(500.0);
    let mut foreign_cache = OutcomeCache::open(&dir, &foreign_grid).unwrap();
    run_campaign_cached(
        &foreign_grid,
        &RunnerConfig::serial(),
        &mut foreign_cache,
        |_, _| {},
    )
    .unwrap();
    let foreign_text = std::fs::read_to_string(foreign_cache.path()).unwrap();
    lines.push(foreign_text.lines().next().unwrap().to_string()); // wrong fingerprint
    std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

    // The damaged entries are rejected, the affected scenario recomputes,
    // and the report stays byte-identical.
    let mut damaged = OutcomeCache::open(&dir, &grid).unwrap();
    assert_eq!(damaged.rejected_lines(), 3);
    assert_eq!(damaged.len(), grid.scenario_count() - 1);
    let run = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut damaged, |_, _| {}).unwrap();
    assert_eq!(run.simulated, 1, "only the poisoned scenario recomputes");
    assert_eq!(run.cache_hits, grid.scenario_count() - 1);
    assert_eq!(
        to_jsonl_string(&aggregate(&grid, &run)),
        reference_jsonl,
        "a damaged cache costs recomputation, never correctness"
    );

    // And the repair was persisted: the next open serves everything again.
    let repaired = OutcomeCache::open(&dir, &grid).unwrap();
    assert_eq!(repaired.len(), grid.scenario_count());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn out_of_range_cache_records_are_ignored_when_the_grid_shrinks() {
    // Cache a 2-replicate grid, then open the same directory with a
    // 1-replicate variant: the fingerprint differs, so nothing leaks
    // between the two files — and a hand-concatenated file with
    // out-of-range ids rejects cleanly.
    let grid_big = ScenarioGrid::new(9)
        .with_topologies(vec![Topology::Cycle { nodes: 5 }])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
        .with_replicates(4)
        .with_horizon_s(300.0);
    let grid_small = grid_big.clone().with_replicates(2);
    let dir = temp_dir("shrink");

    let mut big_cache = OutcomeCache::open(&dir, &grid_big).unwrap();
    run_campaign_cached(
        &grid_big,
        &RunnerConfig::serial(),
        &mut big_cache,
        |_, _| {},
    )
    .unwrap();

    // Forge the small grid's cache from the big grid's records: same
    // line syntax, wrong fingerprint and out-of-range ids.
    let small_cache = OutcomeCache::open(&dir, &grid_small).unwrap();
    std::fs::copy(big_cache.path(), small_cache.path()).unwrap();
    let reopened = OutcomeCache::open(&dir, &grid_small).unwrap();
    assert!(reopened.is_empty(), "foreign records must not be served");
    assert_eq!(reopened.rejected_lines(), grid_big.scenario_count());

    // A run against the rejected cache recomputes and still matches the
    // direct report.
    let mut rejected = OutcomeCache::open(&dir, &grid_small).unwrap();
    let run = run_campaign_cached(
        &grid_small,
        &RunnerConfig::serial(),
        &mut rejected,
        |_, _| {},
    )
    .unwrap();
    assert_eq!(run.simulated, grid_small.scenario_count());
    assert_eq!(
        to_jsonl_string(&aggregate(&grid_small, &run)),
        to_jsonl_string(&aggregate(
            &grid_small,
            &run_campaign(&grid_small, &RunnerConfig::serial())
        )),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
