//! Cross-crate integration tests of the §4 balancer: topology builders feed
//! inventories, the balancer runs to quiescence, and the outcome is checked
//! against the max-min fairness property and against the LP's centralised
//! max-min allocation on a small instance.

use qnet::prelude::*;
use qnet::topology::builders;

fn stock_edges(graph: &Graph, per_edge: u64) -> Inventory {
    let mut inv = Inventory::new(graph.node_count());
    for (a, b) in graph.edges() {
        for _ in 0..per_edge {
            inv.add_pair(NodePair::new(a, b)).unwrap();
        }
    }
    inv
}

#[test]
fn quiescence_has_no_remaining_preferable_swap_on_any_topology() {
    let policy = BalancerPolicy;
    let overhead = |_: NodePair| 1.0;
    for topology in [
        Topology::Cycle { nodes: 10 },
        Topology::TorusGrid { side: 4 },
        Topology::RandomConnectedGrid { side: 4 },
        Topology::Star { nodes: 8 },
        Topology::RandomTree { nodes: 12 },
    ] {
        let graph = topology.build(5);
        let mut inv = stock_edges(&graph, 6);
        let swaps = policy.run_to_quiescence(&mut inv, &overhead, 1_000_000);
        for node in graph.nodes() {
            assert!(
                policy
                    .find_preferable_swap(&inv, &inv, node, &overhead)
                    .is_none(),
                "{}: node {node} still has a preferable swap after {} swaps",
                topology.label(),
                swaps.len()
            );
        }
    }
}

#[test]
fn balancing_conserves_or_reduces_pairs_and_never_inflates_node_load() {
    // Paper §3: a swap never increases the number of Bell pairs held at a
    // node, and each swap reduces the total pair count by exactly one (at
    // D = 1, two consumed, one produced).
    let policy = BalancerPolicy;
    let overhead = |_: NodePair| 1.0;
    let graph = builders::torus_grid(4);
    let mut inv = stock_edges(&graph, 5);
    let initial_total = inv.total_pairs();
    let initial_loads: Vec<u64> = graph.nodes().map(|v| inv.node_load(v)).collect();
    let swaps = policy.run_to_quiescence(&mut inv, &overhead, 1_000_000);
    assert_eq!(inv.total_pairs(), initial_total - swaps.len() as u64);
    for (i, node) in graph.nodes().enumerate() {
        assert!(inv.node_load(node) <= initial_loads[i]);
    }
}

#[test]
fn balancer_spreads_pairs_towards_distant_pools() {
    // On a path the only way the far-end pool gains pairs is through the
    // balancer; after quiescence with a healthy stock, the end-to-end pool
    // must be non-empty even though it can never be generated directly.
    let policy = BalancerPolicy;
    let overhead = |_: NodePair| 1.0;
    let graph = builders::path(5);
    let mut inv = stock_edges(&graph, 16);
    policy.run_to_quiescence(&mut inv, &overhead, 1_000_000);
    let multi_hop_pools = inv
        .nonzero_pairs()
        .into_iter()
        .filter(|(pair, _)| !graph.has_edge(pair.lo(), pair.hi()))
        .count();
    assert!(
        multi_hop_pools >= 3,
        "balancing should seed several multi-hop pools, found {multi_hop_pools}"
    );
}

#[test]
fn distillation_margin_suppresses_swapping() {
    // With a distillation overhead larger than the stock, no swap is ever
    // preferable and the inventory is left untouched.
    let policy = BalancerPolicy;
    let graph = builders::cycle(6);
    let mut inv = stock_edges(&graph, 3);
    let before = inv.clone();
    let swaps = policy.run_to_quiescence(&mut inv, &|_| 4.0, 1_000_000);
    assert!(swaps.is_empty());
    assert_eq!(inv, before);
}

#[test]
fn balancer_matches_lp_maxmin_on_a_three_node_path() {
    // Centralised check: on the 3-node path with symmetric stock, the §4
    // balancer's quiescent allocation gives the (0,2) pool roughly the same
    // share as the LP's max-min fair steady-state consumption split implies
    // (a third of the edge throughput each, i.e. counts within one margin of
    // each other).
    let policy = BalancerPolicy;
    let overhead = |_: NodePair| 1.0;
    let graph = builders::path(3);
    let mut inv = stock_edges(&graph, 12);
    policy.run_to_quiescence(&mut inv, &overhead, 1_000_000);
    let c01 = inv.count(NodePair::new(NodeId(0), NodeId(1)));
    let c12 = inv.count(NodePair::new(NodeId(1), NodeId(2)));
    let c02 = inv.count(NodePair::new(NodeId(0), NodeId(2)));
    assert!(c02 > 0);
    // Quiescence condition: the beneficiary pool is within the margin of the
    // donors (no count can be raised without dropping a smaller one).
    assert!(c02 + 1 >= c01.min(c12).saturating_sub(1));
    // And the donors stay ahead of the beneficiary by at most the margin + 1
    // swap's worth.
    assert!(c01.min(c12) + 2 >= c02);
}
