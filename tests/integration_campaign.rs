//! Workspace-level tests of the campaign engine: grid → parallel run →
//! aggregate → JSONL, with the central determinism guarantee pinned down:
//! the same grid and master seed produce **byte-identical** reports whether
//! the campaign runs on one worker thread or many.

use qnet::campaign::{
    aggregate, overhead_ratios, run_campaign, to_jsonl_string, RunnerConfig, ScenarioGrid,
};
use qnet::prelude::*;

fn test_grid(master_seed: u64) -> ScenarioGrid {
    ScenarioGrid::new(master_seed)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::RandomConnectedGrid { side: 3 },
        ])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_distillations(vec![1.0, 2.0])
        // node_count 0 is patched per topology at expansion time.
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 6, 6)])
        .with_replicates(3)
        .with_horizon_s(1_500.0)
}

#[test]
fn one_and_many_threads_produce_byte_identical_reports() {
    let grid = test_grid(2024);

    let serial = run_campaign(&grid, &RunnerConfig::serial());
    let parallel = run_campaign(&grid, &RunnerConfig::with_threads(4));
    // Tiny chunks force maximal interleaving of the work-claim order.
    let chopped = run_campaign(
        &grid,
        &RunnerConfig {
            threads: 3,
            chunk_size: 1,
        },
    );

    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(serial.outcomes, chopped.outcomes);

    let serial_jsonl = to_jsonl_string(&aggregate(&grid, &serial));
    let parallel_jsonl = to_jsonl_string(&aggregate(&grid, &parallel));
    let chopped_jsonl = to_jsonl_string(&aggregate(&grid, &chopped));
    assert_eq!(serial_jsonl, parallel_jsonl);
    assert_eq!(serial_jsonl, chopped_jsonl);
    assert!(!serial_jsonl.is_empty());
}

#[test]
fn reports_depend_on_the_master_seed() {
    let a = test_grid(1);
    let b = test_grid(2);
    let ra = to_jsonl_string(&aggregate(&a, &run_campaign(&a, &RunnerConfig::default())));
    let rb = to_jsonl_string(&aggregate(&b, &run_campaign(&b, &RunnerConfig::default())));
    assert_ne!(ra, rb, "different master seeds must change the report");
}

#[test]
fn campaign_covers_the_grid_and_aggregates_sanely() {
    let grid = test_grid(7);
    assert_eq!(grid.cell_count(), 2 * 2 * 2);
    assert_eq!(grid.scenario_count(), 8 * 3);

    let result = run_campaign(&grid, &RunnerConfig::default());
    let report = aggregate(&grid, &result);
    assert_eq!(report.cell_reports.len(), grid.cell_count());
    assert_eq!(report.scenarios, grid.scenario_count());

    for cell in &report.cell_reports {
        assert_eq!(cell.replicates, 3);
        assert!((0.0..=1.0).contains(&cell.satisfaction_mean));
        if let Some(mean) = cell.overhead_mean {
            assert!(mean >= 1.0, "{}: overhead {mean}", cell.key.topology);
            let (p10, p90) = (cell.overhead_p10.unwrap(), cell.overhead_p90.unwrap());
            assert!(p10 <= p90);
            assert!(cell.overhead_min.unwrap() <= cell.overhead_max.unwrap());
        }
    }

    // Every (topology, D) pair with both modes present yields a ratio, and
    // ratios are well-formed.
    let ratios = overhead_ratios(&report.cell_reports);
    assert!(
        !ratios.is_empty(),
        "matched oblivious/planned cells expected"
    );
    for r in &ratios {
        assert!(r.ratio > 0.0);
        assert_eq!(r.numerator_mode, PolicyId::OBLIVIOUS);
        assert_eq!(r.denominator_mode, PolicyId::PLANNED);
    }
}

#[test]
fn open_loop_campaign_is_thread_count_deterministic() {
    use qnet::core::workload::PairSelection;

    // An open-loop × Zipf workload axis next to the closed-loop default:
    // arrivals are injected over simulated time, yet the JSONL report stays
    // byte-identical across worker-thread counts.
    let grid = test_grid(31).with_workloads(vec![
        WorkloadSpec::closed_loop(0, 6, 6),
        WorkloadSpec::open_loop(0, 6, 0.05, 400.0)
            .with_discipline(PairSelection::ZipfSkew { s: 1.1 }),
    ]);

    let serial = run_campaign(&grid, &RunnerConfig::serial());
    let parallel = run_campaign(&grid, &RunnerConfig::with_threads(4));
    let chopped = run_campaign(
        &grid,
        &RunnerConfig {
            threads: 3,
            chunk_size: 1,
        },
    );
    assert_eq!(serial.outcomes, parallel.outcomes);
    assert_eq!(serial.outcomes, chopped.outcomes);

    let serial_jsonl = to_jsonl_string(&aggregate(&grid, &serial));
    assert_eq!(serial_jsonl, to_jsonl_string(&aggregate(&grid, &parallel)));
    assert_eq!(serial_jsonl, to_jsonl_string(&aggregate(&grid, &chopped)));

    // Latency columns appear exactly on the open-loop cells.
    let report = aggregate(&grid, &serial);
    let mut open_cells = 0;
    for cell in &report.cell_reports {
        if cell.key.traffic.is_some() {
            open_cells += 1;
            if let (Some(p50), Some(p95)) = (cell.latency_p50_s, cell.latency_p95_s) {
                assert!(p50 <= p95);
            }
        } else {
            assert_eq!(cell.latency_p50_s, None);
            assert_eq!(cell.latency_p95_s, None);
        }
    }
    assert_eq!(open_cells, report.cell_reports.len() / 2);
    assert!(serial_jsonl.contains("latency_p95_s"));
}

#[test]
fn jsonl_report_parses_back_line_by_line() {
    let grid = test_grid(99);
    let report = aggregate(&grid, &run_campaign(&grid, &RunnerConfig::default()));
    let text = to_jsonl_string(&report);
    let mut kinds = std::collections::BTreeMap::<String, usize>::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        let kind = v["kind"].as_str().expect("kind tag").to_string();
        *kinds.entry(kind).or_default() += 1;
    }
    assert_eq!(kinds["campaign"], 1);
    assert_eq!(kinds["cell"], grid.cell_count());
    assert!(kinds.get("ratio").copied().unwrap_or(0) >= 1);
}
