//! Cross-crate integration tests of the §3 LP formulation: consistency of the
//! steady-state solutions with flow conservation, agreement between
//! objectives, and agreement with hand-computable small cases.

use qnet::core::lp_model::{LpObjective, SteadyStateModel};
use qnet::prelude::*;
use qnet::topology::builders;

fn torus_model(side: usize, demand: &[((u32, u32), f64)]) -> SteadyStateModel {
    let graph = builders::torus_grid(side);
    let capacity = RateMatrices::uniform_generation(&graph, 1.0);
    let mut d = RateMatrices::zeros(graph.node_count());
    for &((a, b), rate) in demand {
        d.set_consumption(NodePair::new(NodeId(a), NodeId(b)), rate);
    }
    SteadyStateModel::new(&capacity, &d)
}

/// Check the steady-state balance r⁺ = r⁻ for every pair of a solution.
fn steady_state_holds(
    n: usize,
    sol: &qnet::core::lp_model::SteadyStateSolution,
    survival: f64,
    distillation: f64,
) -> bool {
    for pair in qnet::topology::pairs::all_pairs(n) {
        let arrivals: f64 = sol
            .swap_rates
            .iter()
            .filter(|s| s.produces == pair)
            .map(|s| s.rate)
            .sum::<f64>()
            + sol.generation(pair);
        let departures: f64 = sol
            .swap_rates
            .iter()
            .filter(|s| {
                pair.contains(s.repeater) && {
                    let other = s.produces;
                    other.contains(pair.other(s.repeater).unwrap())
                }
            })
            .map(|s| s.rate)
            .sum::<f64>()
            + sol.consumption(pair);
        if (survival * arrivals - distillation * departures).abs() > 1e-4 {
            return false;
        }
    }
    true
}

#[test]
fn max_total_consumption_solution_satisfies_flow_balance() {
    let model = torus_model(3, &[((0, 4), 3.0), ((2, 6), 3.0)]);
    let sol = model.solve(LpObjective::MaxTotalConsumption);
    assert!(sol.is_optimal());
    assert!(sol.total_consumption() > 0.5);
    assert!(steady_state_holds(9, &sol, 1.0, 1.0));
}

#[test]
fn min_generation_solution_satisfies_flow_balance_with_overheads() {
    let model = torus_model(3, &[((0, 4), 0.3)]).with_overheads(0.8, 2.0);
    let sol = model.solve(LpObjective::MinTotalGeneration);
    assert!(sol.is_optimal());
    assert!(steady_state_holds(9, &sol, 0.8, 2.0));
    // Generation must exceed the naive no-overhead need of 0.6.
    assert!(sol.total_generation() > 0.6);
}

#[test]
fn objectives_are_ordered_sensibly() {
    let model = torus_model(3, &[((0, 4), 5.0), ((1, 5), 5.0)]);
    let total = model.solve(LpObjective::MaxTotalConsumption);
    let fair = model.solve(LpObjective::MaxMinConsumption);
    let alpha = model.solve(LpObjective::MaxProportionalAlpha);
    assert!(total.is_optimal() && fair.is_optimal() && alpha.is_optimal());
    // Total throughput under the fair objectives can never exceed the
    // throughput-maximising objective.
    assert!(fair.total_consumption() <= total.total_consumption() + 1e-6);
    assert!(alpha.total_consumption() <= total.total_consumption() + 1e-6);
    // The max-min floor is at least the proportional allocation's floor.
    let fair_min = model
        .demand_pairs()
        .iter()
        .map(|&p| fair.consumption(p))
        .fold(f64::INFINITY, f64::min);
    let alpha_min = model
        .demand_pairs()
        .iter()
        .map(|&p| alpha.consumption(p))
        .fold(f64::INFINITY, f64::min);
    assert!(fair_min + 1e-6 >= alpha_min);
}

#[test]
fn qec_thinning_scales_required_generation() {
    // Halving the effective generation capacity (R = 2) doubles nothing in
    // the *minimum generation* sense (the demand is what it is), but it can
    // make a previously feasible demand infeasible.
    let graph = builders::cycle(6);
    let mut demand = RateMatrices::zeros(6);
    // 1.2 pairs/s end-to-end fits when both 3-hop routes offer capacity 1
    // each, but not once QEC thinning halves every edge to 0.5 (total 1.0).
    demand.set_consumption(NodePair::new(NodeId(0), NodeId(3)), 1.2);

    let full = SteadyStateModel::new(&RateMatrices::uniform_generation(&graph, 1.0), &demand);
    assert!(full.solve(LpObjective::MinTotalGeneration).is_optimal());

    let thinned = SteadyStateModel::new(
        &RateMatrices::uniform_generation(&graph, 1.0).with_qec_thinning(2.0),
        &demand,
    );
    let sol = thinned.solve(LpObjective::MinTotalGeneration);
    assert!(
        !sol.is_optimal(),
        "after R = 2 thinning the network cannot carry 1.2 pairs/s end-to-end"
    );
}

#[test]
fn lp_relates_to_nested_swap_costs() {
    // For a single consumer pair n hops apart on a path, the minimum total
    // swap rate in the LP equals (n − 1)·c at D = 1 (one swap per hop
    // joint), which is what the executable planned-path baseline performs,
    // and is ≥ the paper's nested lower bound s(n)·c.
    for hops in 2..6usize {
        let graph = builders::path(hops + 1);
        let capacity = RateMatrices::uniform_generation(&graph, 10.0);
        let mut demand = RateMatrices::zeros(hops + 1);
        let endpoints = NodePair::new(NodeId(0), NodeId::from(hops));
        let rate = 0.5;
        demand.set_consumption(endpoints, rate);
        let model = SteadyStateModel::new(&capacity, &demand);
        let sol = model.solve(LpObjective::MinTotalGeneration);
        assert!(sol.is_optimal(), "hops {hops}");
        let total_swaps = sol.total_swap_rate();
        let executed = (hops as f64 - 1.0) * rate;
        let lower_bound = nested_swap_cost(hops, 1.0) * rate;
        assert!(
            (total_swaps - executed).abs() < 1e-4,
            "hops {hops}: {total_swaps} vs {executed}"
        );
        assert!(total_swaps + 1e-6 >= lower_bound);
    }
}
