//! Traffic-model subsystem guarantees, pinned at the workspace level.
//!
//! 1. **Closed-loop equivalence**: `ClosedLoopBatch` reproduces the
//!    pre-traffic-model (PR 2) golden results exactly — the same values
//!    `tests/integration_policy.rs` pins — whether the spec is built through
//!    the new API or deserialized from the legacy flat JSON layout.
//! 2. **Serialization shim**: legacy flat `WorkloadSpec` maps deserialize
//!    into `ClosedLoopBatch`, and closed-loop specs serialize back to the
//!    legacy byte layout (inside `ExperimentConfig` too).
//! 3. **Offered-load sweeps**: an open-loop campaign produces latency
//!    p50/p95 columns and a satisfaction-vs-rate curve for all five
//!    registered policies.

use qnet::campaign::{aggregate, run_campaign, to_jsonl_string, RunnerConfig, ScenarioGrid};
use qnet::core::workload::{PairSelection, TrafficModel};
use qnet::prelude::*;

/// One golden row per built-in policy from the PR 2 capture
/// (`paper_section5`, cycle-9, D = 2, seed 1): `(policy, swaps, satisfied,
/// overhead)`. `integration_policy.rs` pins the full table; this file pins
/// that the *traffic-model* path reproduces it.
const GOLDEN_SEED1: &[(&str, u64, usize, f64)] = &[
    ("oblivious", 325, 35, 2.6639344262295084),
    ("hybrid", 260, 35, 2.1311475409836067),
    ("planned", 156, 35, 1.278688524590164),
    ("connectionless", 156, 35, 1.278688524590164),
];

fn assert_golden(
    result: &ExperimentResult,
    name: &str,
    swaps: u64,
    satisfied: usize,
    overhead: f64,
) {
    assert_eq!(result.swaps_performed, swaps, "{name}: swaps drifted");
    assert_eq!(
        result.satisfied_requests, satisfied,
        "{name}: satisfied drifted"
    );
    let got = result.swap_overhead().expect("non-zero denominator");
    assert!(
        (got - overhead).abs() < 1e-12,
        "{name}: overhead {got} != golden {overhead}"
    );
}

#[test]
fn closed_loop_batch_reproduces_the_pr2_golden_results() {
    for &(name, swaps, satisfied, overhead) in GOLDEN_SEED1 {
        let policy = PolicyId::parse(name).expect("built-in policy");
        let config = ExperimentConfig::paper_section5(Topology::Cycle { nodes: 9 }, 2.0, 1)
            .with_policy(policy);
        assert_eq!(
            config.workload.traffic,
            TrafficModel::ClosedLoopBatch { requests: 35 }
        );
        let result = Experiment::new(config).run();
        assert_golden(&result, name, swaps, satisfied, overhead);
        // Closed-loop sojourns are measured from t = 0, so the latency
        // percentiles coincide with satisfaction times (monotone ordering).
        let p50 = result.latency_p50_s().unwrap();
        let p95 = result.latency_p95_s().unwrap();
        assert!(0.0 < p50 && p50 <= p95);
    }
}

#[test]
fn legacy_flat_workload_json_runs_byte_identically() {
    // A config captured in the pre-traffic-model flat layout.
    let legacy_json = r#"{"network":{"topology":{"Cycle":{"nodes":9}},"topology_seed":1,"generation_rate":1.0,"poisson_generation":true,"swap_scan_rate":4.0,"distillation":{"Uniform":2.0},"loss_factor":1.0,"qec_overhead":null,"decoherence":{"coherence_time_s":null},"buffer_limit":null},"workload":{"node_count":9,"consumer_pairs":35,"requests":35,"discipline":"UniformRandom"},"mode":"Oblivious","knowledge":"Global","seed":1,"max_sim_time_s":20000.0}"#;
    let config: ExperimentConfig = serde_json::from_str(legacy_json).expect("legacy config loads");
    assert_eq!(
        config.workload.traffic,
        TrafficModel::ClosedLoopBatch { requests: 35 }
    );
    assert_eq!(config.workload.selection, PairSelection::UniformRandom);

    // It re-serializes to the exact legacy bytes…
    assert_eq!(serde_json::to_string(&config).unwrap(), legacy_json);

    // …and runs to the PR 2 golden numbers.
    let (_, swaps, satisfied, overhead) = GOLDEN_SEED1[0];
    assert_golden(
        &Experiment::new(config).run(),
        "legacy-json oblivious",
        swaps,
        satisfied,
        overhead,
    );
}

#[test]
fn open_loop_specs_serialize_with_a_traffic_field() {
    let spec = WorkloadSpec::open_loop(9, 10, 1.5, 400.0)
        .with_discipline(PairSelection::ZipfSkew { s: 0.8 });
    let json = serde_json::to_string(&spec).unwrap();
    assert!(json.contains("\"traffic\""), "{json}");
    assert!(json.contains("\"OpenLoopPoisson\""), "{json}");
    assert!(!json.contains("\"requests\""), "no legacy key: {json}");
    let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);

    // And inside a full ExperimentConfig round trip.
    let config = ExperimentConfig {
        workload: spec,
        ..ExperimentConfig::default()
    };
    let config_json = serde_json::to_string(&config).unwrap();
    let config_back: ExperimentConfig = serde_json::from_str(&config_json).unwrap();
    assert_eq!(config_back.workload, spec);
    assert_eq!(serde_json::to_string(&config_back).unwrap(), config_json);
}

#[test]
fn offered_load_sweep_curves_for_all_five_policies() {
    // Satisfaction ratio and latency vs arrival rate, per discipline: the
    // new scenario family this subsystem opens. Low rate ≪ capacity, high
    // rate far above it, on a small cycle so the test stays fast.
    let modes = vec![
        PolicyId::OBLIVIOUS,
        PolicyId::HYBRID,
        PolicyId::PLANNED,
        PolicyId::CONNECTIONLESS,
        PolicyId::GREEDY,
    ];
    let grid = ScenarioGrid::new(17)
        .with_topologies(vec![Topology::Cycle { nodes: 7 }])
        .with_modes(modes.clone())
        .with_workloads(vec![
            WorkloadSpec::open_loop(0, 5, 0.02, 400.0),
            WorkloadSpec::open_loop(0, 5, 5.0, 400.0),
        ])
        .with_replicates(2)
        .with_horizon_s(800.0);

    let report = aggregate(&grid, &run_campaign(&grid, &RunnerConfig::default()));
    assert_eq!(report.cell_reports.len(), modes.len() * 2);

    for mode in &modes {
        let cells: Vec<_> = report
            .cell_reports
            .iter()
            .filter(|c| c.key.mode == *mode)
            .collect();
        assert_eq!(cells.len(), 2, "{mode:?}: one cell per rate");
        let rate = |c: &qnet::campaign::CellReport| match c.key.traffic {
            Some(TrafficModel::OpenLoopPoisson { rate_hz, .. }) => rate_hz,
            _ => panic!("open-loop cell expected"),
        };
        let (low, high) = if rate(cells[0]) < rate(cells[1]) {
            (cells[0], cells[1])
        } else {
            (cells[1], cells[0])
        };
        // Under light load everything is served with low latency; far above
        // capacity the satisfaction ratio must collapse.
        assert!(
            low.satisfaction_mean > 0.9,
            "{mode:?}: light load satisfied only {:.2}",
            low.satisfaction_mean
        );
        assert!(
            high.satisfaction_mean < low.satisfaction_mean,
            "{mode:?}: overload should reduce satisfaction"
        );
        // Latency columns are populated and ordered.
        let (p50, p95) = (
            low.latency_p50_s.expect("p50 under light load"),
            low.latency_p95_s.expect("p95 under light load"),
        );
        assert!(p50 <= p95, "{mode:?}: p50 {p50} > p95 {p95}");
        assert!(low.latency_mean_s.is_some() && low.latency_ci95_s.is_some());
    }

    // The JSONL rows carry the new columns.
    let jsonl = to_jsonl_string(&report);
    assert!(jsonl.contains("\"latency_p50_s\""));
    assert!(jsonl.contains("\"latency_p95_s\""));
    assert!(jsonl.contains("\"OpenLoopPoisson\""));
}
