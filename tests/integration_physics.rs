//! Link-physics subsystem guarantees, pinned at the workspace level.
//!
//! 1. **Ideal-physics byte identity**: the campaign JSONL for an all-ideal
//!    grid is byte-for-byte what the pre-physics stack produced
//!    (`tests/data/golden_ideal_campaign.jsonl` was captured from the
//!    `campaign` binary immediately before the physics subsystem landed),
//!    and the default 108-scenario grid keeps its pre-physics fingerprint —
//!    so legacy caches and shard files stay valid.
//! 2. **Decoherent campaigns** populate the `fidelity_*` columns and
//!    expired-pair counters, and stay deterministic across worker-thread
//!    counts and shard partitions.
//! 3. **Cache-key safety**: grids differing only in `PhysicsModel` get
//!    distinct fingerprints, and a warm cache replays a decoherent grid
//!    with zero simulations.

use qnet::campaign::{
    aggregate, merge_shards, read_shard, run_campaign, run_campaign_cached,
    run_scenarios_with_progress, shard_to_string, to_jsonl_string, OutcomeCache, ShardSpec,
};
use qnet::core::physics::{ConsumeOrder, PhysicsModel};
use qnet::prelude::*;
use qnet_topology::Topology;

/// The exact grid `campaign --topologies cycle:7,torus:3 --modes
/// oblivious,planned,hybrid --dist 1,2 --pairs 5 --requests 5 --replicates 2
/// --horizon 600 --seed 3` built when the golden file was captured.
fn golden_grid() -> ScenarioGrid {
    ScenarioGrid::new(3)
        .with_topologies(vec![
            Topology::Cycle { nodes: 7 },
            Topology::TorusGrid { side: 3 },
        ])
        .with_modes(vec![
            PolicyId::OBLIVIOUS,
            PolicyId::PLANNED,
            PolicyId::HYBRID,
        ])
        .with_distillations(vec![1.0, 2.0])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 5)])
        .with_replicates(2)
        .with_horizon_s(600.0)
}

fn decoherent_grid() -> ScenarioGrid {
    ScenarioGrid::new(11)
        .with_topologies(vec![Topology::Cycle { nodes: 7 }])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::PLANNED])
        .with_physics(vec![
            PhysicsModel::Ideal,
            PhysicsModel::decoherent(0.5).with_fidelity_floor(0.8),
        ])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 4, 4)])
        .with_replicates(2)
        .with_horizon_s(200.0)
}

#[test]
fn ideal_campaign_reproduces_the_prephysics_golden_bytes() {
    let grid = golden_grid();
    let report = aggregate(&grid, &run_campaign(&grid, &RunnerConfig::default()));
    let jsonl = to_jsonl_string(&report);
    let golden = include_str!("data/golden_ideal_campaign.jsonl");
    assert_eq!(
        jsonl, golden,
        "ideal-physics campaign bytes drifted from the pre-physics capture"
    );
}

#[test]
fn default_grids_keep_their_prephysics_fingerprints() {
    // Captured from the pre-physics build: the `campaign` CLI's default
    // 108-scenario grid. The all-ideal physics axis is omitted from the
    // canonical grid JSON, so this hash — and with it every existing cache
    // file and shard header — must never move.
    let default_108 = ScenarioGrid::new(1)
        .with_topologies(vec![
            Topology::Cycle { nodes: 9 },
            Topology::RandomConnectedGrid { side: 3 },
            Topology::WattsStrogatz {
                nodes: 9,
                neighbors: 4,
                rewire_probability: 0.2,
            },
        ])
        .with_modes(vec![
            PolicyId::OBLIVIOUS,
            PolicyId::PLANNED,
            PolicyId::HYBRID,
        ])
        .with_distillations(vec![1.0, 2.0])
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 10, 12)])
        .with_replicates(6)
        .with_horizon_s(4_000.0);
    assert_eq!(default_108.scenario_count(), 108);
    assert_eq!(default_108.fingerprint().to_hex(), "3d0ceedd6e2ff513");
}

#[test]
fn physics_only_grid_differences_produce_distinct_fingerprints() {
    // Stale-cache poisoning guard: every physics variation must move the
    // content address, or a decoherent sweep could silently replay ideal
    // outcomes (and vice versa).
    let base = decoherent_grid();
    let ideal = decoherent_grid().with_physics(vec![PhysicsModel::Ideal]);
    assert_ne!(base.fingerprint(), ideal.fingerprint());

    let other_t2 = decoherent_grid().with_physics(vec![
        PhysicsModel::Ideal,
        PhysicsModel::decoherent(1.0).with_fidelity_floor(0.8),
    ]);
    assert_ne!(base.fingerprint(), other_t2.fingerprint());

    let other_floor = decoherent_grid().with_physics(vec![
        PhysicsModel::Ideal,
        PhysicsModel::decoherent(0.5).with_fidelity_floor(0.7),
    ]);
    assert_ne!(base.fingerprint(), other_floor.fingerprint());

    let other_order = decoherent_grid().with_physics(vec![
        PhysicsModel::Ideal,
        PhysicsModel::decoherent(0.5)
            .with_fidelity_floor(0.8)
            .with_consume_order(ConsumeOrder::NewestFirst),
    ]);
    assert_ne!(base.fingerprint(), other_order.fingerprint());

    // And the descriptor round-trips through JSON with the axis intact.
    let text = serde_json::to_string(&base).unwrap();
    let back: ScenarioGrid = serde_json::from_str(&text).unwrap();
    assert_eq!(back, base);
    assert_eq!(back.fingerprint(), base.fingerprint());
}

#[test]
fn decoherent_campaign_populates_fidelity_columns_and_expires_pairs() {
    let grid = decoherent_grid();
    let report = aggregate(&grid, &run_campaign(&grid, &RunnerConfig::serial()));
    let mut decoherent_cells = 0;
    for cell in &report.cell_reports {
        match cell.key.physics {
            None => {
                assert_eq!(cell.fidelity_mean, None, "ideal cells carry no fidelity");
                assert_eq!(cell.expired_pairs_total, 0);
            }
            Some(physics) => {
                decoherent_cells += 1;
                assert!(!physics.is_ideal());
                assert!(
                    cell.expired_pairs_total > 0,
                    "T2 = 0.5 s with a derived cutoff must expire pairs: {cell:?}"
                );
                if let Some(mean) = cell.fidelity_mean {
                    assert!((0.8..=1.0).contains(&mean), "deliveries meet the floor");
                    let (p50, p95) = (cell.fidelity_p50.unwrap(), cell.fidelity_p95.unwrap());
                    assert!(p50 <= p95 + 1e-12);
                }
            }
        }
    }
    assert_eq!(decoherent_cells, 2);
    // The JSONL surface carries the new columns for decoherent cells only.
    let jsonl = to_jsonl_string(&report);
    let (mut with_fid, mut without) = (0, 0);
    for line in jsonl.lines().filter(|l| l.contains("\"kind\":\"cell\"")) {
        if line.contains("\"physics\"") {
            assert!(line.contains("\"expired_pairs_total\""), "{line}");
            with_fid += 1;
        } else {
            assert!(!line.contains("fidelity"), "{line}");
            without += 1;
        }
    }
    assert_eq!((with_fid, without), (2, 2));
}

#[test]
fn decoherent_campaigns_are_thread_count_and_shard_deterministic() {
    let grid = decoherent_grid();
    let serial = run_campaign(&grid, &RunnerConfig::serial());
    let parallel = run_campaign(&grid, &RunnerConfig::with_threads(4));
    assert_eq!(serial.outcomes, parallel.outcomes);
    let serial_jsonl = to_jsonl_string(&aggregate(&grid, &serial));
    let parallel_jsonl = to_jsonl_string(&aggregate(&grid, &parallel));
    assert_eq!(serial_jsonl, parallel_jsonl);

    // Any shard partition recombines to the same bytes.
    let shards: Vec<_> = (0..3)
        .map(|i| {
            let spec = ShardSpec::new(i, 3).expect("valid shard");
            let run = run_scenarios_with_progress(
                &grid,
                &RunnerConfig::serial(),
                &spec.ids(grid.scenario_count()),
                None,
                |_, _| {},
            )
            .expect("no cache I/O");
            read_shard(&shard_to_string(&grid, spec, &run.outcomes)).expect("round-trips")
        })
        .collect();
    let (merged_grid, merged) = merge_shards(shards).expect("complete partition");
    assert_eq!(
        to_jsonl_string(&aggregate(&merged_grid, &merged)),
        serial_jsonl,
        "sharded decoherent campaign must merge to the single-process bytes"
    );
}

#[test]
fn decoherent_grid_cache_replays_cold_to_warm() {
    let dir = std::env::temp_dir().join(format!("qnet-physics-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let grid = decoherent_grid();

    let mut cache = OutcomeCache::open(&dir, &grid).unwrap();
    let cold = run_campaign_cached(&grid, &RunnerConfig::serial(), &mut cache, |_, _| {}).unwrap();
    assert_eq!(cold.simulated, grid.scenario_count());

    let mut warm_cache = OutcomeCache::open(&dir, &grid).unwrap();
    let warm =
        run_campaign_cached(&grid, &RunnerConfig::serial(), &mut warm_cache, |_, _| {}).unwrap();
    assert_eq!(warm.simulated, 0, "warm decoherent runs must not simulate");
    assert_eq!(warm.cache_hits, grid.scenario_count());
    assert_eq!(
        to_jsonl_string(&aggregate(&grid, &cold)),
        to_jsonl_string(&aggregate(&grid, &warm)),
    );
    // The physics columns survive the cache round-trip exactly.
    assert_eq!(cold.outcomes, warm.outcomes);
    assert!(cold.outcomes.iter().any(|o| o.expired_pairs > 0));

    // A grid differing only in physics opens a *different* cache file and
    // simulates from scratch — no cross-axis poisoning.
    let other = decoherent_grid().with_physics(vec![
        PhysicsModel::Ideal,
        PhysicsModel::decoherent(1.0).with_fidelity_floor(0.8),
    ]);
    let mut other_cache = OutcomeCache::open(&dir, &other).unwrap();
    let other_run =
        run_campaign_cached(&other, &RunnerConfig::serial(), &mut other_cache, |_, _| {}).unwrap();
    assert_eq!(other_run.simulated, other.scenario_count());
    assert_eq!(other_run.cache_hits, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shorter_coherence_times_deliver_lower_fidelity() {
    // The physics knee in miniature: the same world at T2 ∈ {8 s, 0.8 s}
    // (no cutoff, no floor — pure decay) must deliver strictly worse
    // fidelity at the shorter coherence time.
    let run = |t2: f64| {
        let config = ExperimentConfig {
            network: NetworkConfig::new(Topology::Cycle { nodes: 7 })
                .with_physics(PhysicsModel::decoherent(t2)),
            workload: WorkloadSpec::closed_loop(7, 5, 6),
            mode: PolicyId::OBLIVIOUS,
            knowledge: KnowledgeModel::Global,
            seed: 9,
            max_sim_time_s: 2_000.0,
        };
        Experiment::new(config).run()
    };
    let long = run(8.0);
    let short = run(0.8);
    assert!(!long.metrics.satisfied.is_empty());
    assert!(!short.metrics.satisfied.is_empty());
    let mean = |r: &ExperimentResult| {
        let stats = r.metrics.fidelity_stats();
        assert!(stats.count() > 0);
        stats.mean()
    };
    let (f_long, f_short) = (mean(&long), mean(&short));
    assert!(
        f_short < f_long,
        "T2 = 0.8 s must deliver worse fidelity than 8 s ({f_short} vs {f_long})"
    );
    assert!((0.25..=1.0).contains(&f_short));
    // Every delivery is within physical Werner bounds.
    for s in long
        .metrics
        .satisfied
        .iter()
        .chain(&short.metrics.satisfied)
    {
        let f = s.fidelity.unwrap();
        assert!((0.25..=1.0).contains(&f));
    }
}
