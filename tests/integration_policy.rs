//! Swap-policy plugin API guarantees, pinned at the workspace level.
//!
//! 1. **Determinism golden values**: each built-in policy must reproduce
//!    the exact `ExperimentResult` the pre-plugin-API (`ProtocolMode` enum)
//!    implementation produced for the `paper_section5` configuration on
//!    `cycle-9` at `D = 2`, seeds {1, 13, 23}. The numbers below were
//!    captured from the enum-dispatch implementation immediately before the
//!    refactor; any drift means the trait decomposition changed behaviour.
//! 2. **Registry round-trip**: every registered policy name parses the way
//!    the campaign CLI parses `--modes`, serializes through
//!    `ExperimentConfig` JSON, and appears in the `campaign
//!    --list-policies` output.

use qnet::campaign::policy_listing;
use qnet::core::policy::registered_policies;
use qnet::prelude::*;
use qnet_topology::Topology;

/// `(policy, seed, swaps, satisfied, unsatisfied, overhead)` captured from
/// the seed-era enum implementation.
const GOLDEN: &[(&str, u64, u64, usize, u64, f64)] = &[
    ("oblivious", 1, 325, 35, 0, 2.6639344262295084),
    ("oblivious", 13, 322, 35, 0, 2.683333333333333),
    ("oblivious", 23, 366, 35, 0, 2.506849315068493),
    ("hybrid", 1, 260, 35, 0, 2.1311475409836067),
    ("hybrid", 13, 294, 35, 0, 2.45),
    ("hybrid", 23, 278, 35, 0, 1.904109589041096),
    ("planned", 1, 156, 35, 0, 1.278688524590164),
    ("planned", 13, 154, 35, 0, 1.2833333333333334),
    ("planned", 23, 188, 35, 0, 1.2876712328767124),
    ("connectionless", 1, 156, 35, 0, 1.278688524590164),
    ("connectionless", 13, 154, 35, 0, 1.2833333333333334),
    ("connectionless", 23, 188, 35, 0, 1.2876712328767124),
];

fn paper_run(policy: PolicyId, seed: u64) -> ExperimentResult {
    let config = ExperimentConfig::paper_section5(Topology::Cycle { nodes: 9 }, 2.0, seed)
        .with_policy(policy);
    Experiment::new(config).run()
}

#[test]
fn builtin_policies_reproduce_seed_era_golden_results() {
    for &(name, seed, swaps, satisfied, unsatisfied, overhead) in GOLDEN {
        let policy = PolicyId::parse(name).expect("built-in policy");
        let r = paper_run(policy, seed);
        assert_eq!(
            r.swaps_performed, swaps,
            "{name} seed {seed}: swap count drifted"
        );
        assert_eq!(
            r.satisfied_requests, satisfied,
            "{name} seed {seed}: satisfied count drifted"
        );
        assert_eq!(
            r.unsatisfied_requests, unsatisfied,
            "{name} seed {seed}: unsatisfied count drifted"
        );
        let got = r.swap_overhead().expect("non-zero denominator");
        assert!(
            (got - overhead).abs() < 1e-12,
            "{name} seed {seed}: overhead {got} != golden {overhead}"
        );
    }
}

#[test]
fn greedy_policy_runs_the_paper_config_deterministically() {
    // The greedy nested-ordering policy has no enum-era golden values (it
    // post-dates the enum); pin its behaviour to itself instead.
    let a = paper_run(PolicyId::GREEDY, 1);
    let b = paper_run(PolicyId::GREEDY, 1);
    assert_eq!(a, b);
    assert_eq!(a.satisfied_requests, 35);
    assert!(a.swaps_performed > 0);
    // A planned-family discipline: far less swap overhead than balancing.
    let oblivious = paper_run(PolicyId::OBLIVIOUS, 1);
    assert!(a.swaps_performed < oblivious.swaps_performed);
}

#[test]
fn every_registered_policy_parses_like_the_campaign_cli() {
    let entries = registered_policies();
    assert!(entries.len() >= 5, "the five built-ins are registered");
    for entry in &entries {
        // The CLI's --modes axis goes through PolicyId::parse.
        let id = PolicyId::parse(entry.name).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(id.name(), entry.name);
        // Aliases and the legacy display label resolve to the same policy.
        assert_eq!(PolicyId::parse(entry.display).unwrap(), id);
        for alias in entry.aliases {
            assert_eq!(PolicyId::parse(alias).unwrap(), id, "alias {alias}");
        }
    }
}

#[test]
fn every_registered_policy_serializes_through_experiment_config() {
    for entry in registered_policies() {
        let id = PolicyId::parse(entry.name).unwrap();
        let config = ExperimentConfig::default().with_policy(id);
        let json = serde_json::to_string(&config).expect("serializable");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back.mode, id);
        // Byte-stable round trip (full struct equality would trip over the
        // serde shim's non-finite-float → null convention for ideal
        // decoherence, a pre-existing quirk unrelated to policies).
        let json2 = serde_json::to_string(&back).expect("re-serializable");
        assert_eq!(json, json2, "{}: config JSON round-trip", entry.name);
    }
    // Legacy configs carrying the old enum variant labels still load.
    let legacy = serde_json::to_string(&ExperimentConfig::default()).unwrap();
    assert!(
        legacy.contains("\"Oblivious\""),
        "legacy label preserved: {legacy}"
    );
}

#[test]
fn every_registered_policy_appears_in_list_policies_output() {
    let listing = policy_listing();
    for entry in registered_policies() {
        assert!(
            listing.lines().any(|l| l.starts_with(entry.name)),
            "{} missing from --list-policies output:\n{listing}",
            entry.name
        );
    }
}

#[test]
fn greedy_joins_the_campaign_grid_axis() {
    use qnet::campaign::{aggregate, run_campaign};

    let grid = ScenarioGrid::new(5)
        .with_topologies(vec![Topology::Cycle { nodes: 7 }])
        .with_modes(vec![PolicyId::OBLIVIOUS, PolicyId::GREEDY])
        // node_count 0 is patched per topology at expansion time.
        .with_workloads(vec![WorkloadSpec::closed_loop(0, 5, 5)])
        .with_replicates(2)
        .with_horizon_s(800.0);
    let report = aggregate(&grid, &run_campaign(&grid, &RunnerConfig::serial()));
    assert_eq!(report.cell_reports.len(), 2);
    assert_eq!(report.cell_reports[1].key.mode, PolicyId::GREEDY);
    // Greedy is planned-family, so the oblivious/greedy ratio row appears.
    assert!(report
        .ratios
        .iter()
        .any(|r| r.denominator_mode == PolicyId::GREEDY));
}
